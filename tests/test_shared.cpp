// Shared (encapsulated) condition machinery: guard tracking on the sync
// graph, guard-based cross-task co-executability, the pruning partial
// evaluator, the assignment-exact oracle, and witness confirmation —
// including the safety property over a shared-condition random family.
#include <gtest/gtest.h>

#include "core/certifier.h"
#include "core/coexec.h"
#include "core/witness.h"
#include "gen/random_program.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "syncgraph/builder.h"
#include "transform/prune.h"
#include "wavesim/shared.h"

namespace siwa {
namespace {

lang::Program parse(const char* source) {
  return lang::parse_and_check_or_throw(source);
}

NodeId node_of(const sg::SyncGraph& g, const std::string& task, std::size_t n) {
  for (std::size_t t = 0; t < g.task_count(); ++t)
    if (g.task_name(TaskId(t)) == task) return g.nodes_of_task(TaskId(t))[n];
  ADD_FAILURE() << "no task " << task;
  return NodeId::invalid();
}

TEST(Guards, BuilderTracksSharedArms) {
  const auto g = sg::build_sync_graph(parse(R"(
shared condition v;
task t is
begin
  if v then
    accept m1;
  else
    accept m2;
  end if;
  accept m3;
end t;
task u is begin send t.m1; send t.m2; send t.m3; end u;
)"));
  const NodeId m1 = node_of(g, "t", 0);
  const NodeId m2 = node_of(g, "t", 1);
  const NodeId m3 = node_of(g, "t", 2);
  ASSERT_EQ(g.node(m1).guards.size(), 1u);
  EXPECT_TRUE(g.node(m1).guards[0].arm);
  ASSERT_EQ(g.node(m2).guards.size(), 1u);
  EXPECT_FALSE(g.node(m2).guards[0].arm);
  EXPECT_TRUE(g.node(m3).guards.empty());
  EXPECT_TRUE(g.guards_conflict(m1, m2));
  EXPECT_FALSE(g.guards_conflict(m1, m3));
}

TEST(Guards, NonSharedConditionsCarryNoGuards) {
  const auto g = sg::build_sync_graph(parse(R"(
task t is
begin
  if c then
    accept m1;
  end if;
end t;
task u is begin send t.m1; end u;
)"));
  EXPECT_TRUE(g.node(node_of(g, "t", 0)).guards.empty());
}

TEST(Guards, NestedSameConditionKeepsOutermost) {
  const auto g = sg::build_sync_graph(parse(R"(
shared condition v;
task t is
begin
  if v then
    if v then
      accept m1;
    end if;
  end if;
end t;
task u is begin send t.m1; end u;
)"));
  EXPECT_EQ(g.node(node_of(g, "t", 0)).guards.size(), 1u);
}

TEST(Guards, CrossTaskConflictMakesNotCoexecutable) {
  const auto g = sg::build_sync_graph(parse(R"(
shared condition v;
task t is begin if v then accept m1; end if; end t;
task u is begin if v then null; else send t.m1; end if; end u;
)"));
  const core::CoExec coexec(g);
  const NodeId accept_m1 = node_of(g, "t", 0);
  const NodeId send_m1 = node_of(g, "u", 0);
  EXPECT_FALSE(coexec.coexecutable(accept_m1, send_m1));
}

TEST(Guards, DetectorUsesSharedCoexec) {
  // A mutual wait that needs v true in task a and v false in task b: the
  // shared condition rules it out; the plain semantics cannot.
  const char* source = R"(
shared condition v;
task a is
begin
  if v then
    accept ping;
    send b.pong;
  end if;
end a;
task b is
begin
  if v then
    null;
  else
    accept pong;
    send a.ping;
  end if;
end b;
)";
  const auto program = parse(source);
  const core::CertifyResult refined = core::certify_program(program, {});
  EXPECT_TRUE(refined.certified_free);
  // Assignment-exact oracle agrees: no deadlock under either value of v.
  const auto oracle = wavesim::explore_shared(program);
  EXPECT_FALSE(oracle.combined.any_deadlock);
  EXPECT_EQ(oracle.assignments_total, 2u);
}

TEST(Prune, ResolvesIfArmsAndDropsFalseLoops) {
  const auto program = parse(R"(
shared condition v;
task t is
begin
  if v then
    accept m1;
  else
    accept m2;
  end if;
  while v loop
    accept m3;
  end loop;
end t;
task u is begin send t.m1; send t.m2; send t.m3; end u;
)");
  const Symbol v = program.shared_conditions.at(0);

  const auto under_false = transform::prune_shared(program, {{v, false}});
  ASSERT_TRUE(under_false.has_value());
  // Only accept m2 remains in t (if-else arm, loop dropped).
  ASSERT_EQ(under_false->tasks[0].body.size(), 1u);
  EXPECT_EQ(under_false->tasks[0].body[0].kind, lang::StmtKind::Accept);
  EXPECT_TRUE(under_false->shared_conditions.empty());

  // v = true pins the loop condition true: infeasible.
  EXPECT_FALSE(transform::prune_shared(program, {{v, true}}).has_value());
}

TEST(Prune, LeavesUnassignedConditionsAlone) {
  const auto program = parse(R"(
shared condition v, w;
task t is
begin
  if v then
    if w then
      accept m1;
    end if;
  end if;
end t;
task u is begin send t.m1; end u;
)");
  const Symbol v = program.shared_conditions.at(0);
  const auto pruned = transform::prune_shared(program, {{v, true}});
  ASSERT_TRUE(pruned.has_value());
  ASSERT_EQ(pruned->shared_conditions.size(), 1u);
  ASSERT_EQ(pruned->tasks[0].body.size(), 1u);
  EXPECT_EQ(pruned->tasks[0].body[0].kind, lang::StmtKind::If);
}

TEST(Prune, UsedSharedConditionsOnlyCountsOccurrences) {
  const auto program = parse(R"(
shared condition v, unused;
task t is begin if v then accept m1; end if; end t;
task u is begin send t.m1; end u;
)");
  const auto used = transform::used_shared_conditions(program);
  ASSERT_EQ(used.size(), 1u);
  EXPECT_EQ(program.name_of(used[0]), "v");
}

TEST(SharedOracle, RemovesInconsistentAnomalies) {
  // Plain exploration lets t pick v-true and u pick v-false, producing a
  // spurious mutual wait; the assignment-exact oracle does not.
  const char* source = R"(
shared condition v;
task a is
begin
  if v then
    accept ping;
    send b.pong;
  end if;
end a;
task b is
begin
  if v then
    null;
  else
    accept pong;
    send a.ping;
  end if;
end b;
)";
  const auto program = parse(source);
  const sg::SyncGraph g = sg::build_sync_graph(program);
  const auto plain = wavesim::WaveExplorer(g).explore();
  EXPECT_TRUE(plain.any_deadlock);  // over-approximation
  const auto exact = wavesim::explore_shared(program);
  EXPECT_FALSE(exact.combined.any_deadlock);
}

TEST(SharedOracle, FallsBackWithoutSharedConditions) {
  const auto program = parse(R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)");
  const auto result = wavesim::explore_shared(program);
  EXPECT_EQ(result.assignments_total, 1u);
  EXPECT_TRUE(result.combined.any_deadlock);
}

TEST(SharedOracle, CountsInfeasibleAssignments) {
  const auto program = parse(R"(
shared condition v;
task t is begin while v loop accept m; end loop; end t;
task u is begin if v then send t.m; end if; end u;
)");
  const auto result = wavesim::explore_shared(program);
  EXPECT_EQ(result.assignments_total, 2u);
  EXPECT_EQ(result.assignments_infeasible, 1u);  // v = true
}

// --- work/peak accounting and parallel assignments ------------------------

const char* kTwoConditionSource = R"(
shared condition v, w;
task a is
begin
  if v then
    accept ping;
    send b.pong;
  end if;
  if w then
    accept tick;
  end if;
end a;
task b is
begin
  if v then
    null;
  else
    accept pong;
    send a.ping;
  end if;
  send a.tick;
end b;
)";

TEST(SharedOracle, ReportsWorkAndPeakSeparately) {
  const auto program = parse(kTwoConditionSource);
  const auto result = wavesim::explore_shared(program);
  EXPECT_EQ(result.assignments_total, 4u);
  // combined.states is the summed work — identical to work_states — while
  // peak_states is the largest single assignment; with several feasible
  // assignments the sum strictly exceeds the peak.
  EXPECT_EQ(result.combined.states, result.work_states);
  EXPECT_EQ(result.combined.transitions, result.work_transitions);
  EXPECT_GT(result.peak_states, 0u);
  EXPECT_LE(result.peak_states, result.work_states);
  EXPECT_LT(result.peak_states, result.work_states);
}

TEST(SharedOracle, FallbackPathMirrorsWorkIntoPeak) {
  const auto program = parse(R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)");
  const auto result = wavesim::explore_shared(program);
  EXPECT_EQ(result.assignments_total, 1u);
  EXPECT_EQ(result.peak_states, result.work_states);
  EXPECT_EQ(result.work_states, result.combined.states);
  EXPECT_FALSE(result.has_witness_assignment);
}

TEST(SharedOracle, RecordsWitnessAssignment) {
  // The mutual wait is feasible only under v = false (both tasks take the
  // else arm); the witness trace must carry that assignment.
  const auto program = parse(R"(
shared condition v;
task a is
begin
  if v then
    null;
  else
    accept ping;
    send b.pong;
  end if;
end a;
task b is
begin
  if v then
    null;
  else
    accept pong;
    send a.ping;
  end if;
end b;
)");
  const auto result = wavesim::explore_shared(program);
  ASSERT_TRUE(result.combined.any_deadlock);
  ASSERT_FALSE(result.combined.witness_trace.empty());
  ASSERT_TRUE(result.has_witness_assignment);
  ASSERT_EQ(result.witness_assignment.size(), 1u);
  EXPECT_FALSE(result.witness_assignment.begin()->second);
}

TEST(SharedOracle, ParallelAssignmentsMatchSerial) {
  const auto program = parse(kTwoConditionSource);
  const auto serial = wavesim::explore_shared(program);
  wavesim::ExploreOptions options;
  options.threads = 4;
  const auto parallel = wavesim::explore_shared(program, options);
  EXPECT_EQ(serial.combined.complete, parallel.combined.complete);
  EXPECT_EQ(serial.combined.states, parallel.combined.states);
  EXPECT_EQ(serial.combined.transitions, parallel.combined.transitions);
  EXPECT_EQ(serial.combined.any_deadlock, parallel.combined.any_deadlock);
  EXPECT_EQ(serial.combined.any_stall, parallel.combined.any_stall);
  EXPECT_EQ(serial.combined.anomalous_waves, parallel.combined.anomalous_waves);
  EXPECT_EQ(serial.combined.witness_trace, parallel.combined.witness_trace);
  EXPECT_EQ(serial.work_states, parallel.work_states);
  EXPECT_EQ(serial.peak_states, parallel.peak_states);
  EXPECT_EQ(serial.assignments_infeasible, parallel.assignments_infeasible);
  EXPECT_EQ(serial.has_witness_assignment, parallel.has_witness_assignment);
  EXPECT_EQ(serial.witness_assignment_bits, parallel.witness_assignment_bits);
}

TEST(Witness, ConfirmsRealDeadlock) {
  const auto program = parse(R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)");
  const sg::SyncGraph g = sg::build_sync_graph(program);
  const core::CertifyResult r = core::certify_graph(g, {});
  ASSERT_FALSE(r.certified_free);
  const core::WitnessCheck check = core::confirm_witness(g, r.witness_nodes);
  EXPECT_EQ(check.status, core::WitnessStatus::Confirmed);
  EXPECT_FALSE(check.wave.empty());
}

TEST(Witness, RefutesSpuriousReport) {
  // The two-accepts/two-sends program: single-head refined reports, but the
  // program cannot deadlock — exploration refutes the report.
  const auto program = parse(R"(
task b is begin accept m; accept m; end b;
task c is begin send b.m; send b.m; end c;
)");
  const sg::SyncGraph g = sg::build_sync_graph(program);
  const core::CertifyResult r = core::certify_graph(g, {});
  ASSERT_FALSE(r.certified_free);
  const core::WitnessCheck check = core::confirm_witness(g, r.witness_nodes);
  EXPECT_EQ(check.status, core::WitnessStatus::Refuted);
}

TEST(Witness, ConfirmedOtherCycleWhenSuspectsAreSpurious) {
  // Tasks b/c form the refutable two-accepts cycle; tasks d/e genuinely
  // deadlock. Suspecting only b/c nodes yields "confirmed (other cycle)".
  const auto program = parse(R"(
task b is begin accept m; accept m; end b;
task c is begin send b.m; send b.m; end c;
task d is begin accept ping; send e.pong; end d;
task e is begin accept pong; send d.ping; end e;
)");
  const sg::SyncGraph g = sg::build_sync_graph(program);
  std::vector<NodeId> suspects;
  for (NodeId n : g.nodes_of_task(TaskId(0))) suspects.push_back(n);
  const core::WitnessCheck check = core::confirm_witness(g, suspects);
  EXPECT_EQ(check.status, core::WitnessStatus::ConfirmedOtherCycle);
  EXPECT_FALSE(check.wave.empty());
}

TEST(Witness, UnknownWhenCapped) {
  const auto program = parse(R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)");
  const sg::SyncGraph g = sg::build_sync_graph(program);
  wavesim::ExploreOptions options;
  options.max_states = 0;
  const core::WitnessCheck check = core::confirm_witness(g, {}, options);
  EXPECT_EQ(check.status, core::WitnessStatus::Unknown);
}

TEST(Witness, StatusNames) {
  EXPECT_STREQ(core::witness_status_name(core::WitnessStatus::Confirmed),
               "confirmed");
  EXPECT_STREQ(core::witness_status_name(core::WitnessStatus::Refuted),
               "refuted");
}

// Safety of the detector stack against the assignment-exact oracle over a
// shared-condition random family: the detectors (which now exploit guards
// for co-executability) must still never miss a deadlock that is feasible
// under consistent shared-condition semantics.
class SharedFamilyProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SharedFamilyProperties, DetectorsSafeUnderSharedSemantics) {
  gen::RandomProgramConfig config;
  config.tasks = 3;
  config.rendezvous_pairs = 5;
  config.branch_probability = 0.4;
  config.shared_conditions = 2;
  config.shared_condition_probability = 0.7;
  config.seed = GetParam();
  const lang::Program program = gen::random_program(config);

  wavesim::ExploreOptions explore;
  explore.max_states = 100'000;
  explore.collect_witness_trace = false;
  const auto truth = wavesim::explore_shared(program, explore);
  if (!truth.combined.complete || truth.condition_cap_hit)
    GTEST_SKIP() << "oracle capped";

  for (core::Algorithm algorithm :
       {core::Algorithm::Naive, core::Algorithm::RefinedSingle,
        core::Algorithm::RefinedHeadPair, core::Algorithm::RefinedHeadTail,
        core::Algorithm::RefinedHeadTailPairs}) {
    core::CertifyOptions options;
    options.algorithm = algorithm;
    const bool free = certify_program(program, options).certified_free;
    if (truth.combined.any_deadlock) {
      EXPECT_FALSE(free) << core::algorithm_name(algorithm) << " missed, seed "
                         << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedFamilyProperties,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace siwa
