// The parallel hypothesis engine and the reporting fixes that rode along
// with it: the support::ThreadPool itself, serial/parallel bit-identity of
// the refined detector in deterministic mode, early-exit cancellation,
// batch certification, witness filter-validity (a reported witness cycle
// must survive its own hypothesis's marks) and suspect-head deduplication.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/certifier.h"
#include "core/coexec.h"
#include "core/precedence.h"
#include "core/refined_detector.h"
#include "gen/random_program.h"
#include "lang/parser.h"
#include "support/thread_pool.h"
#include "syncgraph/builder.h"
#include "syncgraph/clg.h"

namespace siwa::core {
namespace {

sg::SyncGraph graph_of(const char* source) {
  return sg::build_sync_graph(lang::parse_and_check_or_throw(source));
}

// Task a deadlocks on itself (accept m waits for a send that sits behind
// it in its own task — footnote 6's single-head cycle) and also deadlocks
// mutually with task b, so in HeadPair mode the head `accept m` hits in
// both the self-send pre-pass and the pair loop.
constexpr const char* kSelfSendPlusPair = R"(
task a is begin accept m; send a.m; send b.p; end a;
task b is begin accept p; send a.m; end b;
)";

constexpr const char* kRealDeadlock = R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)";

struct Analysis {
  sg::SyncGraph graph;
  sg::Clg clg;
  Precedence precedence;
  CoExec coexec;

  explicit Analysis(sg::SyncGraph g)
      : graph(std::move(g)), clg(graph), precedence(graph), coexec(graph) {}

  [[nodiscard]] RefinedResult detect(const RefinedOptions& options) const {
    return detect_refined(graph, clg, precedence, coexec, options);
  }
};

std::vector<lang::Program> seeded_corpus() {
  std::vector<lang::Program> corpus;
  const double branch[] = {0.0, 0.35};
  for (double b : branch) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      gen::RandomProgramConfig config;
      config.tasks = 3;
      config.rendezvous_pairs = 5;
      config.branch_probability = b;
      config.seed = seed;
      corpus.push_back(gen::random_program(config));
    }
  }
  return corpus;
}

const HypothesisMode kAllModes[] = {
    HypothesisMode::SingleHead, HypothesisMode::HeadPair,
    HypothesisMode::HeadTail, HypothesisMode::HeadTailPairs};

void expect_identical(const RefinedResult& expected, const RefinedResult& got,
                      const char* what) {
  EXPECT_EQ(expected.deadlock_possible, got.deadlock_possible) << what;
  EXPECT_EQ(expected.hypotheses_tested, got.hypotheses_tested) << what;
  EXPECT_EQ(expected.possible_heads, got.possible_heads) << what;
  EXPECT_EQ(expected.suspect_heads, got.suspect_heads) << what;
  EXPECT_EQ(expected.witness_cycle, got.witness_cycle) << what;
  EXPECT_EQ(expected.witness_clg_cycle, got.witness_clg_cycle) << what;
}

// Property (i) of the witness fix: the reported CLG cycle is a real cycle
// (every consecutive pair, wrap included, is a CLG edge), every edge of it
// survives the reporting hypothesis's own marks, and it alternates sync
// and control edges (>= 1 sync edge, never two sync edges in a row).
void expect_valid_witness(const Analysis& a, const RefinedResult& r) {
  ASSERT_TRUE(r.deadlock_possible);
  ASSERT_TRUE(r.witness_hypothesis.head1.valid());
  const auto& cycle = r.witness_clg_cycle;
  ASSERT_GE(cycle.size(), 2u);

  MarkedSearch marks(a.clg);
  marks.apply(a.graph, a.precedence, a.coexec, r.witness_hypothesis);

  std::size_t sync_edges = 0;
  bool prev_was_sync =
      a.clg.is_sync_edge(cycle.back(), cycle.front());  // seed for wrap check
  for (std::size_t j = 0; j < cycle.size(); ++j) {
    const ClgNodeId from = cycle[j];
    const ClgNodeId to = cycle[(j + 1) % cycle.size()];
    bool is_edge = false;
    for (VertexId w : a.clg.graph().successors(VertexId(from.index())))
      if (w.index() == to.index()) is_edge = true;
    ASSERT_TRUE(is_edge) << "witness step " << j << " is not a CLG edge";
    EXPECT_TRUE(marks.edge_allowed(from.index(), to.index()))
        << "witness step " << j << " uses an edge its hypothesis removed";
    const bool is_sync = a.clg.is_sync_edge(from, to);
    if (is_sync) {
      EXPECT_FALSE(prev_was_sync) << "two consecutive sync edges at step "
                                  << j;
      ++sync_edges;
    }
    prev_was_sync = is_sync;
  }
  EXPECT_GE(sync_edges, 1u) << "witness cycle has no sync edge";
}

// ----- ThreadPool -----

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  support::ThreadPool pool(8);
  EXPECT_EQ(pool.worker_count(), 8u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_each(hits.size(), [&](std::size_t i, std::size_t worker) {
    ASSERT_LT(worker, pool.worker_count());
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountAndReuse) {
  support::ThreadPool pool(4);
  pool.parallel_for_each(0, [](std::size_t, std::size_t) { FAIL(); });
  std::atomic<int> total{0};
  for (int round = 0; round < 3; ++round)
    pool.parallel_for_each(10, [&](std::size_t, std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 30);
}

TEST(ThreadPool, SingleWorkerIsSequential) {
  support::ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for_each(5, [&](std::size_t i, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, PropagatesExceptionAndSurvives) {
  support::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_each(100,
                             [&](std::size_t i, std::size_t) {
                               if (i == 7) throw std::runtime_error("boom");
                             }),
      std::runtime_error);
  // The pool is reusable after an exception.
  std::atomic<int> total{0};
  pool.parallel_for_each(16, [&](std::size_t, std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(support::resolve_thread_count(3), 3u);
  EXPECT_EQ(support::resolve_thread_count(1), 1u);
  EXPECT_GE(support::resolve_thread_count(0), 1u);
}

// Re-entrant fan-out on the SAME pool would park a worker on its own
// completion wait forever (every worker is busy running the outer body, so
// the inner parallel_for_each's done_cv never fires). The pool fails fast
// instead of deadlocking.
TEST(ThreadPoolDeathTest, NestedFanOutOnSamePoolFailsFast) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  support::ThreadPool pool(2);
  EXPECT_DEATH(
      pool.parallel_for_each(4,
                             [&](std::size_t, std::size_t) {
                               pool.parallel_for_each(
                                   1, [](std::size_t, std::size_t) {});
                             }),
      "same pool");
}

// Nested fan-out on a DIFFERENT pool is the supported shape (explore_shared
// does exactly this: assignment workers fan out level expansion on inner
// pools) and must complete normally.
TEST(ThreadPool, NestedFanOutOnDifferentPoolRuns) {
  support::ThreadPool outer(2);
  std::atomic<int> total{0};
  outer.parallel_for_each(4, [&](std::size_t, std::size_t) {
    support::ThreadPool inner(2);
    inner.parallel_for_each(8, [&](std::size_t, std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 32);
}

// ----- parallel determinism (property ii) -----

TEST(ParallelDetector, DeterministicModeMatchesSerialOnCorpus) {
  for (const lang::Program& program : seeded_corpus()) {
    const Analysis a(sg::build_sync_graph(program));
    for (HypothesisMode mode : kAllModes) {
      RefinedOptions serial;
      serial.mode = mode;
      const RefinedResult expected = a.detect(serial);
      for (std::size_t threads : {1, 2, 8}) {
        RefinedOptions parallel = serial;
        parallel.parallel.threads = threads;
        expect_identical(expected, a.detect(parallel), "full sweep");
      }
    }
  }
}

TEST(ParallelDetector, DeterministicEarlyExitMatchesSerialEarlyExit) {
  for (const lang::Program& program : seeded_corpus()) {
    const Analysis a(sg::build_sync_graph(program));
    for (HypothesisMode mode : kAllModes) {
      RefinedOptions serial;
      serial.mode = mode;
      serial.stop_at_first_hit = true;
      const RefinedResult expected = a.detect(serial);
      for (std::size_t threads : {2, 8}) {
        RefinedOptions parallel = serial;
        parallel.parallel.threads = threads;
        expect_identical(expected, a.detect(parallel), "early exit");
      }
    }
  }
}

TEST(ParallelDetector, EarlyExitKeepsVerdictAndWitnessOfFullSweep) {
  const Analysis a(graph_of(kSelfSendPlusPair));
  for (HypothesisMode mode : kAllModes) {
    RefinedOptions full;
    full.mode = mode;
    const RefinedResult everything = a.detect(full);

    RefinedOptions first_hit = full;
    first_hit.stop_at_first_hit = true;
    const RefinedResult stopped = a.detect(first_hit);

    EXPECT_EQ(everything.deadlock_possible, stopped.deadlock_possible);
    EXPECT_EQ(everything.witness_cycle, stopped.witness_cycle);
    EXPECT_LE(stopped.hypotheses_tested, everything.hypotheses_tested);
    if (everything.deadlock_possible) {
      ASSERT_FALSE(stopped.suspect_heads.empty());
      EXPECT_EQ(stopped.suspect_heads.front(),
                everything.suspect_heads.front());
    }
  }
}

TEST(ParallelDetector, NonDeterministicModeStillGetsVerdictRight) {
  for (const lang::Program& program : seeded_corpus()) {
    const Analysis a(sg::build_sync_graph(program));
    RefinedOptions serial;
    const bool expected = a.detect(serial).deadlock_possible;
    RefinedOptions loose;
    loose.parallel.threads = 4;
    loose.parallel.deterministic = false;
    loose.stop_at_first_hit = true;
    EXPECT_EQ(a.detect(loose).deadlock_possible, expected);
  }
}

// ----- hypothesis enumeration / counting consistency -----

TEST(Hypotheses, TestedCountEqualsEnumerationInEveryMode) {
  const Analysis a(graph_of(kSelfSendPlusPair));
  for (HypothesisMode mode : kAllModes) {
    RefinedOptions options;
    options.mode = mode;
    const auto hyps = enumerate_hypotheses(a.graph, a.precedence, a.coexec,
                                           options);
    const RefinedResult r = a.detect(options);
    EXPECT_EQ(r.hypotheses_tested, hyps.size());
  }
}

TEST(Hypotheses, EvaluateMatchesDetectVerdict) {
  const Analysis a(graph_of(kRealDeadlock));
  RefinedOptions options;
  const auto hyps =
      enumerate_hypotheses(a.graph, a.precedence, a.coexec, options);
  ASSERT_FALSE(hyps.empty());
  MarkedSearch scratch(a.clg);
  bool any_hit = false;
  for (const Hypothesis& hyp : hyps) {
    const HypothesisOutcome outcome = evaluate_hypothesis(
        a.graph, a.clg, a.precedence, a.coexec, hyp, scratch);
    if (outcome.hit) {
      any_hit = true;
      EXPECT_FALSE(outcome.witness_clg.empty());
    }
  }
  EXPECT_EQ(any_hit, a.detect(options).deadlock_possible);
}

// ----- suspect-head deduplication (regression) -----

TEST(SuspectHeads, NoDuplicateWhenSelfSendHeadAlsoHitsInPairLoop) {
  const Analysis a(graph_of(kSelfSendPlusPair));
  for (HypothesisMode mode :
       {HypothesisMode::HeadPair, HypothesisMode::HeadTailPairs}) {
    RefinedOptions options;
    options.mode = mode;
    const RefinedResult r = a.detect(options);
    EXPECT_TRUE(r.deadlock_possible);
    std::set<NodeId> unique(r.suspect_heads.begin(), r.suspect_heads.end());
    EXPECT_EQ(unique.size(), r.suspect_heads.size())
        << "suspect_heads contains duplicates";
  }
}

TEST(SuspectHeads, UniqueAcrossCorpusInEveryMode) {
  for (const lang::Program& program : seeded_corpus()) {
    const Analysis a(sg::build_sync_graph(program));
    for (HypothesisMode mode : kAllModes) {
      RefinedOptions options;
      options.mode = mode;
      const RefinedResult r = a.detect(options);
      std::set<NodeId> unique(r.suspect_heads.begin(), r.suspect_heads.end());
      EXPECT_EQ(unique.size(), r.suspect_heads.size());
    }
  }
}

// ----- witness validity (regression + property i) -----

TEST(Witness, SurvivesItsHypothesisFiltersOnDeadlockPair) {
  const Analysis a(graph_of(kRealDeadlock));
  for (HypothesisMode mode : kAllModes) {
    RefinedOptions options;
    options.mode = mode;
    const RefinedResult r = a.detect(options);
    ASSERT_TRUE(r.deadlock_possible);
    expect_valid_witness(a, r);
    EXPECT_FALSE(r.witness_cycle.empty());
  }
}

TEST(Witness, ValidAcrossCorpusEveryModeAndThreadCount) {
  for (const lang::Program& program : seeded_corpus()) {
    const Analysis a(sg::build_sync_graph(program));
    for (HypothesisMode mode : kAllModes) {
      for (std::size_t threads : {1, 4}) {
        RefinedOptions options;
        options.mode = mode;
        options.parallel.threads = threads;
        const RefinedResult r = a.detect(options);
        if (r.deadlock_possible) expect_valid_witness(a, r);
      }
    }
  }
}

// ----- certify_batch -----

TEST(CertifyBatch, MatchesIndividualCertificationInInputOrder) {
  std::vector<sg::SyncGraph> graphs;
  std::vector<lang::Program> corpus = seeded_corpus();
  for (std::size_t i = 0; i < 20; ++i)
    graphs.push_back(sg::build_sync_graph(corpus[i]));

  CertifyOptions options;
  options.algorithm = Algorithm::RefinedHeadPair;
  for (std::size_t threads : {1, 4}) {
    CertifyOptions batch_options = options;
    batch_options.parallel.threads = threads;
    const std::vector<CertifyResult> batch =
        certify_batch(graphs, batch_options);
    ASSERT_EQ(batch.size(), graphs.size());
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      const CertifyResult solo = certify_graph(graphs[i], options);
      EXPECT_EQ(batch[i].certified_free, solo.certified_free) << i;
      EXPECT_EQ(batch[i].witness, solo.witness) << i;
      EXPECT_EQ(batch[i].stats.hypotheses_tested,
                solo.stats.hypotheses_tested)
          << i;
    }
  }
}

TEST(CertifyBatch, EmptyCorpus) {
  EXPECT_TRUE(certify_batch({}, {}).empty());
}

}  // namespace
}  // namespace siwa::core
