#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/reachability.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "stall/codependent.h"
#include "syncgraph/builder.h"
#include "transform/inline.h"
#include "transform/linearize.h"
#include "transform/merge.h"
#include "transform/prune.h"
#include "transform/unroll.h"

namespace siwa::transform {
namespace {

lang::Program parse(const char* source) {
  return lang::parse_and_check_or_throw(source);
}

TEST(Unroll, LoopFreeProgramUnchanged) {
  const lang::Program p = parse(R"(
task t is begin accept m; end t;
task u is begin send t.m; end u;
)");
  EXPECT_FALSE(has_loops(p));
  const lang::Program q = unroll_loops_twice(p);
  EXPECT_EQ(lang::print_program(p), lang::print_program(q));
}

TEST(Unroll, SingleLoopBecomesNestedConditionals) {
  const lang::Program p = parse(R"(
task t is begin while c loop accept m; end loop; end t;
task u is begin send t.m; end u;
)");
  EXPECT_TRUE(has_loops(p));
  const lang::Program q = unroll_loops_twice(p);
  EXPECT_FALSE(has_loops(q));
  // Body duplicated exactly twice.
  const lang::AstStats stats = lang::compute_stats(q);
  EXPECT_EQ(stats.rendezvous_points, 2u + 1u);  // two accepts + one send
  // Shape: if c then accept; if c then accept end if; end if.
  const lang::Stmt& outer = q.tasks[0].body.at(0);
  ASSERT_EQ(outer.kind, lang::StmtKind::If);
  ASSERT_EQ(outer.body.size(), 2u);
  EXPECT_EQ(outer.body[0].kind, lang::StmtKind::Accept);
  EXPECT_EQ(outer.body[1].kind, lang::StmtKind::If);
}

TEST(Unroll, NestedLoopsGrowGeometrically) {
  // One rendezvous under k nested loops appears 2^k times after T(P).
  const lang::Program p = parse(R"(
task t is
begin
  while a loop
    while b loop
      while c loop
        accept m;
      end loop;
    end loop;
  end loop;
end t;
task u is begin send t.m; end u;
)");
  const lang::Program q = unroll_loops_twice(p);
  EXPECT_FALSE(has_loops(q));
  EXPECT_EQ(lang::compute_stats(q).rendezvous_points, 8u + 1u);
}

TEST(Unroll, ResultingSyncGraphIsAcyclic) {
  const lang::Program p = parse(R"(
task t is
begin
  accept m1;
  while c loop
    accept m2;
    accept m1;
  end loop;
end t;
task u is begin send t.m1; send t.m2; send t.m1; end u;
)");
  const sg::SyncGraph g = sg::build_sync_graph(unroll_loops_twice(p));
  EXPECT_TRUE(graph::topological_order(g.control_graph()).has_value());
}

TEST(Unroll, PreservesCrossIterationPaths) {
  // Lemma 1: a path entering the loop body in one iteration and leaving in
  // the next must exist in T(P): accept m2 (iteration k) -> accept m1
  // (iteration k+1).
  const lang::Program p = parse(R"(
task t is
begin
  while c loop
    accept m1;
    accept m2;
  end loop;
end t;
task u is begin send t.m1; send t.m2; end u;
)");
  const sg::SyncGraph g = sg::build_sync_graph(unroll_loops_twice(p));
  const graph::Reachability reach(g.control_graph());
  // Find an m2 accept that reaches an m1 accept through control flow.
  bool found = false;
  for (NodeId a : g.nodes_of_task(TaskId(0))) {
    if (g.message_name(g.signal_type(g.node(a).signal).message) != "m2")
      continue;
    for (NodeId b : g.nodes_of_task(TaskId(0))) {
      if (g.message_name(g.signal_type(g.node(b).signal).message) != "m1")
        continue;
      if (reach.reaches(VertexId(a.value), VertexId(b.value))) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Linearize, StraightLineHasOnePath) {
  const lang::Program p = parse(R"(
task t is begin accept m; send u.k; end t;
task u is begin accept k; send t.m; end u;
)");
  const auto lins = enumerate_linearizations(p, p.tasks[0]);
  EXPECT_TRUE(lins.complete);
  ASSERT_EQ(lins.paths.size(), 1u);
  ASSERT_EQ(lins.paths[0].rendezvous.size(), 2u);
  EXPECT_FALSE(lins.paths[0].rendezvous[0].is_send);
  EXPECT_TRUE(lins.paths[0].rendezvous[1].is_send);
}

TEST(Linearize, BranchDoublesPaths) {
  const lang::Program p = parse(R"(
task t is
begin
  if c then
    accept m1;
  else
    accept m2;
  end if;
end t;
task u is begin send t.m1; send t.m2; end u;
)");
  const auto lins = enumerate_linearizations(p, p.tasks[0]);
  EXPECT_EQ(lins.paths.size(), 2u);
}

TEST(Linearize, LoopBoundedIterations) {
  const lang::Program p = parse(R"(
task t is begin while c loop accept m; end loop; end t;
task u is begin send t.m; end u;
)");
  LinearizeOptions options;
  options.max_loop_iterations = 3;
  const auto lins = enumerate_linearizations(p, p.tasks[0], options);
  // 0, 1, 2 or 3 iterations.
  ASSERT_EQ(lins.paths.size(), 4u);
  std::vector<std::size_t> sizes;
  for (const auto& path : lins.paths) sizes.push_back(path.rendezvous.size());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Linearize, SharedConditionRecordsAssignment) {
  const lang::Program p = parse(R"(
shared condition c;
task t is
begin
  if c then
    accept m1;
  end if;
end t;
task u is begin send t.m1; end u;
)");
  const auto lins = enumerate_linearizations(p, p.tasks[0]);
  ASSERT_EQ(lins.paths.size(), 2u);
  for (const auto& path : lins.paths) {
    ASSERT_EQ(path.shared_assignment.size(), 1u);
    const bool value = path.shared_assignment.begin()->second;
    EXPECT_EQ(path.rendezvous.size(), value ? 1u : 0u);
  }
}

TEST(Linearize, ContradictorySharedPathsDropped) {
  // `if c then accept m1 end; if c then else accept m2 end` cannot take the
  // then-arm of one and the else-arm of the other.
  const lang::Program p = parse(R"(
shared condition c;
task t is
begin
  if c then
    accept m1;
  end if;
  if c then
    null;
  else
    accept m2;
  end if;
end t;
task u is begin send t.m1; send t.m2; end u;
)");
  const auto lins = enumerate_linearizations(p, p.tasks[0]);
  // Only c=true (m1) and c=false (m2) survive; mixed paths are infeasible.
  ASSERT_EQ(lins.paths.size(), 2u);
  for (const auto& path : lins.paths)
    EXPECT_EQ(path.rendezvous.size(), 1u);
}

TEST(Linearize, SharedLoopConditionPinnedFalse) {
  const lang::Program p = parse(R"(
shared condition c;
task t is begin while c loop accept m; end loop; end t;
task u is begin send t.m; end u;
)");
  const auto lins = enumerate_linearizations(p, p.tasks[0]);
  ASSERT_EQ(lins.paths.size(), 1u);
  EXPECT_TRUE(lins.paths[0].rendezvous.empty());
}

TEST(Linearize, PathCapClearsComplete) {
  const lang::Program p = parse(R"(
task t is
begin
  if a then accept m; end if;
  if b then accept m; end if;
  if c then accept m; end if;
end t;
task u is begin send t.m; end u;
)");
  LinearizeOptions options;
  options.max_paths = 3;
  const auto lins = enumerate_linearizations(p, p.tasks[0], options);
  EXPECT_FALSE(lins.complete);
  EXPECT_EQ(lins.paths.size(), 3u);
}

TEST(Merge, HoistsCommonPrefixRendezvous) {
  // Figure 5(b)/(c): the same rendezvous on both arms merges out.
  const lang::Program p = parse(R"(
task t is
begin
  if c then
    accept m;
    accept extra;
  else
    accept m;
  end if;
end t;
task u is begin send t.m; send t.extra; end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 1u);
  // accept m is now unconditional: first statement of the task.
  ASSERT_FALSE(q.tasks[0].body.empty());
  EXPECT_EQ(q.tasks[0].body[0].kind, lang::StmtKind::Accept);
}

TEST(Merge, SplitsAroundInteriorMatchForSharedCondition) {
  const lang::Program p = parse(R"(
shared condition c;
task t is
begin
  if c then
    accept pre1;
    accept m;
    accept post1;
  else
    accept pre2;
    accept m;
    accept post2;
  end if;
end t;
task u is
begin
  send t.pre1; send t.m; send t.post1; send t.pre2; send t.post2;
end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 1u);
  // Shape: if (pre1|pre2); accept m; if (post1|post2).
  const auto& body = q.tasks[0].body;
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[0].kind, lang::StmtKind::If);
  EXPECT_EQ(body[1].kind, lang::StmtKind::Accept);
  EXPECT_EQ(body[2].kind, lang::StmtKind::If);
}

TEST(Merge, DropsEmptiedConditional) {
  const lang::Program p = parse(R"(
task t is
begin
  if c then
    accept m;
  else
    accept m;
  end if;
end t;
task u is begin send t.m; end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 1u);
  ASSERT_EQ(q.tasks[0].body.size(), 1u);
  EXPECT_EQ(q.tasks[0].body[0].kind, lang::StmtKind::Accept);
}

TEST(Merge, NoInteriorSplitForIndependentCondition) {
  // Permuted equal arms: a split would decorrelate the two residues, so
  // only shared conditions admit it; independent ones stay untouched.
  const lang::Program p = parse(R"(
task t is
begin
  if c then
    accept m;
    accept k;
  else
    accept k;
    accept m;
  end if;
end t;
task u is begin send t.m; send t.k; end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 0u);
  EXPECT_EQ(lang::print_program(p), lang::print_program(q));
}

TEST(Merge, SuffixHoistForIndependentCondition) {
  const lang::Program p = parse(R"(
task t is
begin
  if c then
    accept a1;
    accept m;
  else
    accept a2;
    accept m;
  end if;
end t;
task u is begin send t.a1; send t.a2; send t.m; end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 1u);
  ASSERT_EQ(q.tasks[0].body.size(), 2u);
  EXPECT_EQ(q.tasks[0].body[0].kind, lang::StmtKind::If);
  EXPECT_EQ(q.tasks[0].body[1].kind, lang::StmtKind::Accept);
}

TEST(Merge, LeavesDistinctArmsAlone) {
  const lang::Program p = parse(R"(
task t is
begin
  if c then
    accept m1;
  else
    accept m2;
  end if;
end t;
task u is begin send t.m1; send t.m2; end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 0u);
  EXPECT_EQ(lang::print_program(p), lang::print_program(q));
}

TEST(Merge, RecursesIntoNestedConditionals) {
  const lang::Program p = parse(R"(
task t is
begin
  if outer then
    if inner then
      accept m;
    else
      accept m;
    end if;
  end if;
end t;
task u is begin send t.m; end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 1u);
  // The inner conditional collapses; the outer one remains (accept m is
  // conditional on `outer` only).
  ASSERT_EQ(q.tasks[0].body.size(), 1u);
  EXPECT_EQ(q.tasks[0].body[0].kind, lang::StmtKind::If);
  ASSERT_EQ(q.tasks[0].body[0].body.size(), 1u);
  EXPECT_EQ(q.tasks[0].body[0].body[0].kind, lang::StmtKind::Accept);
}

// ---- guard metadata preservation through the transform passes ----

// Guard sets seen per (line, column, sign) — location-stable across the
// AST passes, which preserve statement locs. The value is the SET of
// distinct guard multisets, so unrolled copies of one statement (same loc,
// same guards) collapse to a single entry.
using GuardSet = std::multiset<std::pair<std::string, bool>>;
using GuardSignature = std::map<std::tuple<int, int, bool>, std::set<GuardSet>>;

GuardSignature guard_signature(const sg::SyncGraph& g) {
  GuardSignature out;
  for (std::size_t i = 2; i < g.node_count(); ++i) {
    const sg::SyncNode& n = g.node(NodeId(i));
    GuardSet guards;
    for (const sg::Guard& guard : n.guards)
      guards.insert({std::string(g.message_name(guard.cond)), guard.arm});
    out[{n.loc.line, n.loc.column, n.sign == sg::Sign::Plus}].insert(
        std::move(guards));
  }
  return out;
}

std::vector<std::string> loop_cond_names(const sg::SyncGraph& g) {
  std::vector<std::string> names;
  for (Symbol c : g.loop_conditions())
    names.emplace_back(g.message_name(c));
  return names;
}

TEST(GuardPreservation, UnrollKeepsGuardsAndLoopConditions) {
  const lang::Program p = parse(R"(
shared condition c;
shared condition d;
task t is
begin
  while c loop
    if d then
      accept m;
    end if;
  end loop;
end t;
task u is begin send t.m; end u;
)");
  const sg::SyncGraph before = sg::build_sync_graph(p);
  const lang::Program q = unroll_loops_twice(p);
  EXPECT_EQ(q.shared_loop_conditions.size(), 1u);
  const sg::SyncGraph after = sg::build_sync_graph(q);

  // The loop condition survives unrolling (the unrolled graph has no While
  // statement left to rediscover it from — the carrier field must do it).
  EXPECT_EQ(loop_cond_names(after), loop_cond_names(before));

  // Every unrolled copy keeps its source node's guard set: same (loc, sign)
  // key, same multiset of (condition, arm).
  const auto sig_before = guard_signature(before);
  for (const auto& [key, guards] : guard_signature(after)) {
    const auto it = sig_before.find(key);
    ASSERT_NE(it, sig_before.end())
        << "unroll invented a node at line " << std::get<0>(key);
    EXPECT_EQ(guards, it->second);
  }
}

TEST(GuardPreservation, StructuralPassesKeepGuardsAndLoopConditions) {
  // inline/merge/codependent may restructure conditionals, but none of them
  // may lose the shared while (and with it the pinned loop condition) or
  // the guard on a rendezvous they leave in place.
  const char* src = R"(
shared condition c;
task t is
begin
  while c loop
    accept m;
  end loop;
  if c then
    send u.x;
  else
    send u.y;
  end if;
end t;
task u is begin accept x; accept y; send t.m; end u;
)";
  const lang::Program p = parse(src);
  ASSERT_FALSE(used_shared_conditions(p).empty());

  const lang::Program inlined = inline_procedures(p);
  EXPECT_EQ(inlined.shared_loop_conditions, p.shared_loop_conditions);
  const lang::Program merged = merge_branch_rendezvous(inlined);
  EXPECT_EQ(merged.shared_loop_conditions, p.shared_loop_conditions);
  std::size_t factored = 0;
  const lang::Program codep = stall::factor_codependent(merged, &factored);
  EXPECT_EQ(codep.shared_loop_conditions, p.shared_loop_conditions);

  for (const lang::Program* q : {&inlined, &merged, &codep}) {
    const sg::SyncGraph g = sg::build_sync_graph(*q);
    EXPECT_EQ(loop_cond_names(g), std::vector<std::string>{"c"});
    // The loop-body accept must still carry its (c, true) guard.
    bool guarded_accept = false;
    for (std::size_t i = 2; i < g.node_count(); ++i) {
      const sg::SyncNode& n = g.node(NodeId(i));
      if (n.sign != sg::Sign::Minus || n.guards.empty()) continue;
      for (const sg::Guard& guard : n.guards)
        if (g.message_name(guard.cond) == "c" && guard.arm)
          guarded_accept = true;
    }
    EXPECT_TRUE(guarded_accept) << "pass dropped the loop-body guard";
  }
}

TEST(GuardPreservation, PruneFiltersAssignedConditions) {
  const lang::Program p = parse(R"(
shared condition c;
shared condition w;
task t is
begin
  while w loop
    accept inside;
  end loop;
  if c then
    accept m;
  end if;
end t;
task u is begin send t.inside; send t.m; end u;
)");
  ASSERT_EQ(p.shared_loop_conditions.size(), 0u);  // populated by build/unroll
  const sg::SyncGraph g = sg::build_sync_graph(p);
  ASSERT_EQ(loop_cond_names(g), std::vector<std::string>{"w"});

  // Assign only c: the loop condition stays unassigned, so it must survive
  // into the pruned program's carrier and graph.
  std::map<Symbol, bool> assignment;
  for (Symbol s : used_shared_conditions(p))
    if (p.name_of(s) == "c") assignment[s] = true;
  ASSERT_EQ(assignment.size(), 1u);
  const auto pruned = prune_shared(p, assignment);
  ASSERT_TRUE(pruned.has_value());
  const sg::SyncGraph pg = sg::build_sync_graph(*pruned);
  EXPECT_EQ(loop_cond_names(pg), std::vector<std::string>{"w"});
  // The kept arm's accept lost its c guard (the condition is decided).
  for (std::size_t i = 2; i < pg.node_count(); ++i)
    for (const sg::Guard& guard : pg.node(NodeId(i)).guards)
      EXPECT_NE(pg.message_name(guard.cond), "c");

  // Assigning the loop condition false removes both the loop and the
  // carrier entry.
  std::map<Symbol, bool> loop_assignment;
  for (Symbol s : used_shared_conditions(p))
    if (p.name_of(s) == "w") loop_assignment[s] = false;
  const auto no_loop = prune_shared(p, loop_assignment);
  ASSERT_TRUE(no_loop.has_value());
  EXPECT_TRUE(sg::build_sync_graph(*no_loop).loop_conditions().empty());
}

}  // namespace
}  // namespace siwa::transform
