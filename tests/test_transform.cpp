#include <gtest/gtest.h>

#include "graph/reachability.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "syncgraph/builder.h"
#include "transform/linearize.h"
#include "transform/merge.h"
#include "transform/unroll.h"

namespace siwa::transform {
namespace {

lang::Program parse(const char* source) {
  return lang::parse_and_check_or_throw(source);
}

TEST(Unroll, LoopFreeProgramUnchanged) {
  const lang::Program p = parse(R"(
task t is begin accept m; end t;
task u is begin send t.m; end u;
)");
  EXPECT_FALSE(has_loops(p));
  const lang::Program q = unroll_loops_twice(p);
  EXPECT_EQ(lang::print_program(p), lang::print_program(q));
}

TEST(Unroll, SingleLoopBecomesNestedConditionals) {
  const lang::Program p = parse(R"(
task t is begin while c loop accept m; end loop; end t;
task u is begin send t.m; end u;
)");
  EXPECT_TRUE(has_loops(p));
  const lang::Program q = unroll_loops_twice(p);
  EXPECT_FALSE(has_loops(q));
  // Body duplicated exactly twice.
  const lang::AstStats stats = lang::compute_stats(q);
  EXPECT_EQ(stats.rendezvous_points, 2u + 1u);  // two accepts + one send
  // Shape: if c then accept; if c then accept end if; end if.
  const lang::Stmt& outer = q.tasks[0].body.at(0);
  ASSERT_EQ(outer.kind, lang::StmtKind::If);
  ASSERT_EQ(outer.body.size(), 2u);
  EXPECT_EQ(outer.body[0].kind, lang::StmtKind::Accept);
  EXPECT_EQ(outer.body[1].kind, lang::StmtKind::If);
}

TEST(Unroll, NestedLoopsGrowGeometrically) {
  // One rendezvous under k nested loops appears 2^k times after T(P).
  const lang::Program p = parse(R"(
task t is
begin
  while a loop
    while b loop
      while c loop
        accept m;
      end loop;
    end loop;
  end loop;
end t;
task u is begin send t.m; end u;
)");
  const lang::Program q = unroll_loops_twice(p);
  EXPECT_FALSE(has_loops(q));
  EXPECT_EQ(lang::compute_stats(q).rendezvous_points, 8u + 1u);
}

TEST(Unroll, ResultingSyncGraphIsAcyclic) {
  const lang::Program p = parse(R"(
task t is
begin
  accept m1;
  while c loop
    accept m2;
    accept m1;
  end loop;
end t;
task u is begin send t.m1; send t.m2; send t.m1; end u;
)");
  const sg::SyncGraph g = sg::build_sync_graph(unroll_loops_twice(p));
  EXPECT_TRUE(graph::topological_order(g.control_graph()).has_value());
}

TEST(Unroll, PreservesCrossIterationPaths) {
  // Lemma 1: a path entering the loop body in one iteration and leaving in
  // the next must exist in T(P): accept m2 (iteration k) -> accept m1
  // (iteration k+1).
  const lang::Program p = parse(R"(
task t is
begin
  while c loop
    accept m1;
    accept m2;
  end loop;
end t;
task u is begin send t.m1; send t.m2; end u;
)");
  const sg::SyncGraph g = sg::build_sync_graph(unroll_loops_twice(p));
  const graph::Reachability reach(g.control_graph());
  // Find an m2 accept that reaches an m1 accept through control flow.
  bool found = false;
  for (NodeId a : g.nodes_of_task(TaskId(0))) {
    if (g.message_name(g.signal_type(g.node(a).signal).message) != "m2")
      continue;
    for (NodeId b : g.nodes_of_task(TaskId(0))) {
      if (g.message_name(g.signal_type(g.node(b).signal).message) != "m1")
        continue;
      if (reach.reaches(VertexId(a.value), VertexId(b.value))) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Linearize, StraightLineHasOnePath) {
  const lang::Program p = parse(R"(
task t is begin accept m; send u.k; end t;
task u is begin accept k; send t.m; end u;
)");
  const auto lins = enumerate_linearizations(p, p.tasks[0]);
  EXPECT_TRUE(lins.complete);
  ASSERT_EQ(lins.paths.size(), 1u);
  ASSERT_EQ(lins.paths[0].rendezvous.size(), 2u);
  EXPECT_FALSE(lins.paths[0].rendezvous[0].is_send);
  EXPECT_TRUE(lins.paths[0].rendezvous[1].is_send);
}

TEST(Linearize, BranchDoublesPaths) {
  const lang::Program p = parse(R"(
task t is
begin
  if c then
    accept m1;
  else
    accept m2;
  end if;
end t;
task u is begin send t.m1; send t.m2; end u;
)");
  const auto lins = enumerate_linearizations(p, p.tasks[0]);
  EXPECT_EQ(lins.paths.size(), 2u);
}

TEST(Linearize, LoopBoundedIterations) {
  const lang::Program p = parse(R"(
task t is begin while c loop accept m; end loop; end t;
task u is begin send t.m; end u;
)");
  LinearizeOptions options;
  options.max_loop_iterations = 3;
  const auto lins = enumerate_linearizations(p, p.tasks[0], options);
  // 0, 1, 2 or 3 iterations.
  ASSERT_EQ(lins.paths.size(), 4u);
  std::vector<std::size_t> sizes;
  for (const auto& path : lins.paths) sizes.push_back(path.rendezvous.size());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Linearize, SharedConditionRecordsAssignment) {
  const lang::Program p = parse(R"(
shared condition c;
task t is
begin
  if c then
    accept m1;
  end if;
end t;
task u is begin send t.m1; end u;
)");
  const auto lins = enumerate_linearizations(p, p.tasks[0]);
  ASSERT_EQ(lins.paths.size(), 2u);
  for (const auto& path : lins.paths) {
    ASSERT_EQ(path.shared_assignment.size(), 1u);
    const bool value = path.shared_assignment.begin()->second;
    EXPECT_EQ(path.rendezvous.size(), value ? 1u : 0u);
  }
}

TEST(Linearize, ContradictorySharedPathsDropped) {
  // `if c then accept m1 end; if c then else accept m2 end` cannot take the
  // then-arm of one and the else-arm of the other.
  const lang::Program p = parse(R"(
shared condition c;
task t is
begin
  if c then
    accept m1;
  end if;
  if c then
    null;
  else
    accept m2;
  end if;
end t;
task u is begin send t.m1; send t.m2; end u;
)");
  const auto lins = enumerate_linearizations(p, p.tasks[0]);
  // Only c=true (m1) and c=false (m2) survive; mixed paths are infeasible.
  ASSERT_EQ(lins.paths.size(), 2u);
  for (const auto& path : lins.paths)
    EXPECT_EQ(path.rendezvous.size(), 1u);
}

TEST(Linearize, SharedLoopConditionPinnedFalse) {
  const lang::Program p = parse(R"(
shared condition c;
task t is begin while c loop accept m; end loop; end t;
task u is begin send t.m; end u;
)");
  const auto lins = enumerate_linearizations(p, p.tasks[0]);
  ASSERT_EQ(lins.paths.size(), 1u);
  EXPECT_TRUE(lins.paths[0].rendezvous.empty());
}

TEST(Linearize, PathCapClearsComplete) {
  const lang::Program p = parse(R"(
task t is
begin
  if a then accept m; end if;
  if b then accept m; end if;
  if c then accept m; end if;
end t;
task u is begin send t.m; end u;
)");
  LinearizeOptions options;
  options.max_paths = 3;
  const auto lins = enumerate_linearizations(p, p.tasks[0], options);
  EXPECT_FALSE(lins.complete);
  EXPECT_EQ(lins.paths.size(), 3u);
}

TEST(Merge, HoistsCommonPrefixRendezvous) {
  // Figure 5(b)/(c): the same rendezvous on both arms merges out.
  const lang::Program p = parse(R"(
task t is
begin
  if c then
    accept m;
    accept extra;
  else
    accept m;
  end if;
end t;
task u is begin send t.m; send t.extra; end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 1u);
  // accept m is now unconditional: first statement of the task.
  ASSERT_FALSE(q.tasks[0].body.empty());
  EXPECT_EQ(q.tasks[0].body[0].kind, lang::StmtKind::Accept);
}

TEST(Merge, SplitsAroundInteriorMatchForSharedCondition) {
  const lang::Program p = parse(R"(
shared condition c;
task t is
begin
  if c then
    accept pre1;
    accept m;
    accept post1;
  else
    accept pre2;
    accept m;
    accept post2;
  end if;
end t;
task u is
begin
  send t.pre1; send t.m; send t.post1; send t.pre2; send t.post2;
end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 1u);
  // Shape: if (pre1|pre2); accept m; if (post1|post2).
  const auto& body = q.tasks[0].body;
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[0].kind, lang::StmtKind::If);
  EXPECT_EQ(body[1].kind, lang::StmtKind::Accept);
  EXPECT_EQ(body[2].kind, lang::StmtKind::If);
}

TEST(Merge, DropsEmptiedConditional) {
  const lang::Program p = parse(R"(
task t is
begin
  if c then
    accept m;
  else
    accept m;
  end if;
end t;
task u is begin send t.m; end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 1u);
  ASSERT_EQ(q.tasks[0].body.size(), 1u);
  EXPECT_EQ(q.tasks[0].body[0].kind, lang::StmtKind::Accept);
}

TEST(Merge, NoInteriorSplitForIndependentCondition) {
  // Permuted equal arms: a split would decorrelate the two residues, so
  // only shared conditions admit it; independent ones stay untouched.
  const lang::Program p = parse(R"(
task t is
begin
  if c then
    accept m;
    accept k;
  else
    accept k;
    accept m;
  end if;
end t;
task u is begin send t.m; send t.k; end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 0u);
  EXPECT_EQ(lang::print_program(p), lang::print_program(q));
}

TEST(Merge, SuffixHoistForIndependentCondition) {
  const lang::Program p = parse(R"(
task t is
begin
  if c then
    accept a1;
    accept m;
  else
    accept a2;
    accept m;
  end if;
end t;
task u is begin send t.a1; send t.a2; send t.m; end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 1u);
  ASSERT_EQ(q.tasks[0].body.size(), 2u);
  EXPECT_EQ(q.tasks[0].body[0].kind, lang::StmtKind::If);
  EXPECT_EQ(q.tasks[0].body[1].kind, lang::StmtKind::Accept);
}

TEST(Merge, LeavesDistinctArmsAlone) {
  const lang::Program p = parse(R"(
task t is
begin
  if c then
    accept m1;
  else
    accept m2;
  end if;
end t;
task u is begin send t.m1; send t.m2; end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 0u);
  EXPECT_EQ(lang::print_program(p), lang::print_program(q));
}

TEST(Merge, RecursesIntoNestedConditionals) {
  const lang::Program p = parse(R"(
task t is
begin
  if outer then
    if inner then
      accept m;
    else
      accept m;
    end if;
  end if;
end t;
task u is begin send t.m; end u;
)");
  MergeStats stats;
  const lang::Program q = merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 1u);
  // The inner conditional collapses; the outer one remains (accept m is
  // conditional on `outer` only).
  ASSERT_EQ(q.tasks[0].body.size(), 1u);
  EXPECT_EQ(q.tasks[0].body[0].kind, lang::StmtKind::If);
  ASSERT_EQ(q.tasks[0].body[0].body.size(), 1u);
  EXPECT_EQ(q.tasks[0].body[0].body[0].kind, lang::StmtKind::Accept);
}

}  // namespace
}  // namespace siwa::transform
