#include <gtest/gtest.h>

#include "core/certifier.h"
#include "core/constraint4.h"
#include "gen/patterns.h"
#include "lang/parser.h"
#include "syncgraph/builder.h"
#include "syncgraph/clg.h"

namespace siwa::core {
namespace {

sg::SyncGraph graph_of(const char* source) {
  return sg::build_sync_graph(lang::parse_and_check_or_throw(source));
}

RefinedResult run_refined(const sg::SyncGraph& g, RefinedOptions options = {}) {
  const sg::Clg clg(g);
  const Precedence prec(g);
  const CoExec coexec(g);
  return detect_refined(g, clg, prec, coexec, options);
}

// A deadlock-free program whose CLG nevertheless has a cycle entering and
// leaving task B through two accepts of one signal type — the Lemma 2 /
// Figure 5(a) situation. The naive detector reports it; the refined
// detector eliminates every head hypothesis (COACCEPT kills the cycle for
// the accept head, sequenceability for the others).
constexpr const char* kLemma2Spurious = R"(
task a is begin accept k; send b.m; end a;
task b is begin accept m; accept m; end b;
task c is begin send b.m; send a.k; end c;
)";

// A genuinely deadlocking pair: each task accepts before the other sends.
constexpr const char* kRealDeadlock = R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)";

TEST(Naive, ReportsRealDeadlock) {
  const auto g = graph_of(kRealDeadlock);
  const sg::Clg clg(g);
  const NaiveResult r = detect_naive(g, clg);
  EXPECT_TRUE(r.deadlock_possible);
  EXPECT_GE(r.witness_cycle.size(), 2u);
}

TEST(Naive, CertifiesHandshake) {
  const auto g = graph_of(R"(
task a is begin send b.d; accept ack; end a;
task b is begin accept d; send a.ack; end b;
)");
  const sg::Clg clg(g);
  EXPECT_FALSE(detect_naive(g, clg).deadlock_possible);
}

TEST(Naive, ReportsLemma2SpuriousCycle) {
  const auto g = graph_of(kLemma2Spurious);
  const sg::Clg clg(g);
  const NaiveResult r = detect_naive(g, clg);
  EXPECT_TRUE(r.deadlock_possible);  // imprecise, as section 4 predicts
}

TEST(PossibleHeads, RequireSyncEdgeAndOnwardControl) {
  const auto g = graph_of(R"(
task a is begin accept m; send b.k; end a;
task b is begin accept k; end b;
task c is begin send a.m; end c;
)");
  const auto heads = possible_heads(g);
  // accept m (has partner, leads to send b.k) qualifies; the task-final
  // nodes do not; accept k is final; send a.m is final.
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(g.describe(heads[0]).find("a:"), 0u);
}

// Single-head hypotheses eliminate the COACCEPT head inside the Lemma 2
// cycle, but the entry head `accept k` and the send head `send b.m` carry
// no cycle-breaking mark — the paper's algorithm keeps this imprecision
// ("conservatively declare ... a possible deadlock").
TEST(Refined, SingleHeadNarrowsButKeepsLemma2Cycle) {
  const auto g = graph_of(kLemma2Spurious);
  const RefinedResult r = run_refined(g);
  EXPECT_TRUE(r.deadlock_possible);
  EXPECT_EQ(r.suspect_heads.size(), 2u);
  // The COACCEPT-eliminated accept head of task b is not among suspects.
  for (NodeId h : r.suspect_heads)
    EXPECT_NE(g.task_name(g.node(h).task), "b");
}

// A deadlock-free program whose only CLG cycle has two heads that the
// strong-precedence engine (R1/R3/R4 + transitivity) proves ordered: the
// single-head refined algorithm certifies it while naive reports a cycle.
// Task d forces b's accept of m to complete before c reaches w, so both
// heads of the cycle (a1 in b, w in c) carry a NO-SYNC mark for each other.
constexpr const char* kOrderedSpurious = R"(
task b is begin accept m; send c.k; end b;
task c is begin accept pre; accept k; send b.m; end c;
task d is begin send b.m; send c.pre; end d;
)";

TEST(Refined, OrderingEliminatesSpuriousCycle) {
  const auto g = graph_of(kOrderedSpurious);
  const sg::Clg clg(g);
  EXPECT_TRUE(detect_naive(g, clg).deadlock_possible);
  const RefinedResult r = run_refined(g);
  EXPECT_FALSE(r.deadlock_possible)
      << "suspect head: "
      << (r.suspect_heads.empty() ? "?" : g.describe(r.suspect_heads[0]));
}

TEST(Refined, OrderingEliminationNeedsR4) {
  const auto g = graph_of(kOrderedSpurious);
  const sg::Clg clg(g);
  PrecedenceOptions no_r4;
  no_r4.use_rule_r4 = false;
  const Precedence prec(g, no_r4);
  const CoExec coexec(g);
  // Without the counting rule the cross-task order is underivable and the
  // spurious cycle survives — the ablation measured in bench E7/E10.
  EXPECT_TRUE(detect_refined(g, clg, prec, coexec, {}).deadlock_possible);
}

TEST(Refined, StillReportsRealDeadlock) {
  const auto g = graph_of(kRealDeadlock);
  const RefinedResult r = run_refined(g);
  EXPECT_TRUE(r.deadlock_possible);
  EXPECT_FALSE(r.suspect_heads.empty());
  EXPECT_GE(r.witness_cycle.size(), 2u);
}

TEST(Refined, HeadPairModeAgreesOnRealDeadlock) {
  const auto g = graph_of(kRealDeadlock);
  RefinedOptions options;
  options.mode = HypothesisMode::HeadPair;
  EXPECT_TRUE(run_refined(g, options).deadlock_possible);
}

// Minimal program where the head-pair extension is strictly stronger: the
// cycle's only two possible heads are joined by a sync edge (they could
// rendezvous, violating constraint 2), so every pair hypothesis is skipped
// and the program is certified — while the single-head search cannot
// eliminate the send-side head.
constexpr const char* kTwoHeadSpurious = R"(
task b is begin accept m; accept m; end b;
task c is begin send b.m; send b.m; end c;
)";

TEST(Refined, HeadPairEliminatesSyncJoinedHeads) {
  const auto g = graph_of(kTwoHeadSpurious);
  const sg::Clg clg(g);
  EXPECT_TRUE(detect_naive(g, clg).deadlock_possible);
  EXPECT_TRUE(run_refined(g).deadlock_possible);  // single head: imprecise
  RefinedOptions options;
  options.mode = HypothesisMode::HeadPair;
  EXPECT_FALSE(run_refined(g, options).deadlock_possible);
}

TEST(Refined, HeadTailModeAgreesOnRealDeadlock) {
  const auto g = graph_of(kRealDeadlock);
  RefinedOptions options;
  options.mode = HypothesisMode::HeadTail;
  EXPECT_TRUE(run_refined(g, options).deadlock_possible);
}

TEST(Refined, HeadTailKeepsLemma2Cycle) {
  // Head-tail hypotheses drop the COACCEPT marks (the exit is pinned), so
  // the (accept k, send b.m) pair still closes the cycle: this mode trades
  // a different spurious-cycle class, it is not uniformly stronger.
  const auto g = graph_of(kLemma2Spurious);
  RefinedOptions options;
  options.mode = HypothesisMode::HeadTail;
  EXPECT_TRUE(run_refined(g, options).deadlock_possible);
}

TEST(Refined, HeadTailPairsSafeOnRealDeadlocks) {
  RefinedOptions options;
  options.mode = HypothesisMode::HeadTailPairs;
  EXPECT_TRUE(run_refined(graph_of(kRealDeadlock), options).deadlock_possible);
  // Self-send single-head cycle covered by the footnote-6 escape.
  EXPECT_TRUE(run_refined(graph_of(R"(
task a is begin send a.m; accept m; end a;
)"),
                          options)
                  .deadlock_possible);
}

TEST(Refined, HeadTailPairsEliminatesBothSpuriousExamples) {
  RefinedOptions options;
  options.mode = HypothesisMode::HeadTailPairs;
  // Combines the pair-mode head constraints (kills the sync-joined-heads
  // example) with the ordering marks (kills the ordered example).
  EXPECT_FALSE(run_refined(graph_of(kTwoHeadSpurious), options).deadlock_possible);
  EXPECT_FALSE(run_refined(graph_of(kOrderedSpurious), options).deadlock_possible);
}

TEST(Refined, HeadTailEliminatesOrderedSpuriousCycle) {
  const auto g = graph_of(kOrderedSpurious);
  RefinedOptions options;
  options.mode = HypothesisMode::HeadTail;
  EXPECT_FALSE(run_refined(g, options).deadlock_possible);
}

TEST(Refined, NotCoexecBranchArmsBlockCycle) {
  // Figure 4(c): the only CLG cycle threads BOTH arms of t's conditional
  // (a1 -> b1 -> x1 -> y2 -> a2 -> b2 -> x2 -> y1 -> back to a1), yet the
  // arms are mutually exclusive. Ground truth is stall-only. The refined
  // detector eliminates the a1/a2 head hypotheses with NOT-COEXEC marks
  // (constraint 3b) and the x1/x2 hypotheses via counting-rule orderings.
  const auto g = graph_of(R"(
task t is
begin
  if c then
    accept m1;
    send u.k1;
  else
    accept m2;
    send u.k2;
  end if;
end t;
task u is
begin
  send t.m1;
  accept k1;
  send t.m2;
  accept k2;
  send t.m1;
end u;
)");
  const sg::Clg clg(g);
  EXPECT_TRUE(detect_naive(g, clg).deadlock_possible);
  const RefinedResult r = run_refined(g);
  EXPECT_FALSE(r.deadlock_possible)
      << "suspect head: "
      << (r.suspect_heads.empty() ? "?" : g.describe(r.suspect_heads[0]));
}

TEST(Constraint4, Figure3BreakerFiltersHead) {
  // Heads r (task a) / t (task b) form a constraint-1..3 valid cycle, but w
  // (task c) can always rendezvous with t: w's only other partner v runs
  // strictly after t, w is unconditional and first in its task.
  const auto g = graph_of(R"(
task a is begin accept m1; send b.k; end a;
task b is begin accept w0; accept k; send a.m1; send c.v; end b;
task c is begin send b.w0; accept v; end c;
)");
  const Precedence prec(g);
  const Constraint4Filter filter(g, prec);
  // t = accept w0 is always broken by w = send b.w0.
  NodeId accept_w0 = NodeId::invalid();
  for (NodeId n : g.nodes_of_task(TaskId(1)))
    if (g.describe(n).find("w0") != std::string::npos) accept_w0 = n;
  ASSERT_TRUE(accept_w0.valid());
  EXPECT_TRUE(filter.always_broken(accept_w0));
  EXPECT_GE(filter.broken_count(), 1u);
}

TEST(Constraint4, RealDeadlockHeadsNeverFiltered) {
  // In the mutual-wait pair the two *sends* are provably always broken
  // (each is preceded only by an accept whose sole partner is the other
  // task's send — they are never even reached while their partner waits),
  // but the two accepts that actually head the deadlock cycle must never
  // be filtered, and detection must be unaffected.
  const auto g = graph_of(kRealDeadlock);
  const Precedence prec(g);
  const Constraint4Filter filter(g, prec);
  for (std::size_t t = 0; t < g.task_count(); ++t) {
    for (NodeId n : g.nodes_of_task(TaskId(t))) {
      if (g.node(n).sign == sg::Sign::Minus) {
        EXPECT_FALSE(filter.always_broken(n)) << g.describe(n);
      }
    }
  }
  RefinedOptions options;
  options.apply_constraint4 = true;
  EXPECT_TRUE(run_refined(g, options).deadlock_possible);
}

TEST(Certifier, ProgramPipelineRunsAllAlgorithms) {
  const auto program = lang::parse_and_check_or_throw(kTwoHeadSpurious);
  for (Algorithm algorithm :
       {Algorithm::Naive, Algorithm::RefinedSingle, Algorithm::RefinedHeadPair,
        Algorithm::RefinedHeadTail, Algorithm::RefinedHeadTailPairs}) {
    CertifyOptions options;
    options.algorithm = algorithm;
    const CertifyResult r = certify_program(program, options);
    EXPECT_EQ(r.stats.tasks, 2u);
    EXPECT_GT(r.stats.clg_nodes, 0u);
    // Only the pair-based extensions resolve this example (see the refined
    // detector tests); all modes run through the same facade.
    if (algorithm == Algorithm::RefinedHeadPair ||
        algorithm == Algorithm::RefinedHeadTailPairs)
      EXPECT_TRUE(r.certified_free);
    else
      EXPECT_FALSE(r.certified_free) << algorithm_name(algorithm);
  }
}

TEST(Certifier, UnrollsLoopsAutomatically) {
  const auto program = lang::parse_and_check_or_throw(R"(
task t is begin while c loop accept m; end loop; end t;
task u is begin send t.m; end u;
)");
  const CertifyResult r = certify_program(program);
  EXPECT_TRUE(r.stats.unrolled);
  EXPECT_TRUE(r.certified_free);
}

TEST(Certifier, WitnessDescribesCycle) {
  const auto program = lang::parse_and_check_or_throw(kRealDeadlock);
  const CertifyResult r = certify_program(program);
  ASSERT_FALSE(r.certified_free);
  ASSERT_FALSE(r.witness.empty());
  EXPECT_NE(r.witness[0].find("("), std::string::npos);
}

TEST(Certifier, PatternsEndToEnd) {
  // Deadlocking variants flagged by every algorithm; clean pipeline/barrier
  // certified by the refined algorithm.
  for (Algorithm algorithm : {Algorithm::Naive, Algorithm::RefinedSingle}) {
    CertifyOptions options;
    options.algorithm = algorithm;
    EXPECT_FALSE(
        certify_program(gen::dining_philosophers(3, true), options).certified_free);
    EXPECT_FALSE(certify_program(gen::token_ring(3, true), options).certified_free);
    EXPECT_FALSE(
        certify_program(gen::client_server(2, true), options).certified_free);
  }
  CertifyOptions refined;
  EXPECT_TRUE(certify_program(gen::pipeline(2, 1), refined).certified_free);
  EXPECT_TRUE(certify_program(gen::barrier(2), refined).certified_free);
}

TEST(Certifier, NewPatternsSafety) {
  for (Algorithm algorithm :
       {Algorithm::Naive, Algorithm::RefinedSingle, Algorithm::RefinedHeadPair,
        Algorithm::RefinedHeadTailPairs}) {
    CertifyOptions options;
    options.algorithm = algorithm;
    EXPECT_FALSE(certify_program(gen::master_worker(2, 2, true), options)
                     .certified_free);
    EXPECT_FALSE(
        certify_program(gen::readers_writer(2, true), options).certified_free);
    EXPECT_FALSE(
        certify_program(gen::two_resource(false), options).certified_free);
  }
  // The clean lock-style variants rely on counting/serialization the
  // static analysis cannot see; every mode stays conservative on them —
  // documented imprecision, not unsoundness (the oracle-based property
  // suite guards the soundness side).
  EXPECT_FALSE(
      certify_program(gen::master_worker(2, 2, false), {}).certified_free);
}

TEST(CertifierBatch, EmptyCorpusIsWellFormed) {
  // An empty corpus used to spin up pool scaffolding under the batch span;
  // now it returns immediately — but still through a complete, well-formed
  // "certify.batch" span at any thread count.
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    obs::MetricsSink sink;
    CertifyOptions options;
    options.metrics = obs::SinkRef{&sink};
    options.parallel.threads = threads;
    EXPECT_TRUE(certify_batch({}, options).empty());
    EXPECT_EQ(sink.counter_totals().count("certify.hypotheses"), 0u);
  }
}

// A completed crosswise rendezvous pair: certified free by the refined
// detector (unlike kLemma2Spurious, which it only partially eliminates).
constexpr const char* kCleanHandshake = R"(
task a is begin send b.d; accept ack; end a;
task b is begin accept d; send a.ack; end b;
)";

TEST(CertifierBatch, ThreadsClampToGraphCount) {
  // Far more threads than graphs: the pool is clamped to the corpus size
  // and verdicts stay indexed like the input.
  std::vector<sg::SyncGraph> graphs;
  graphs.push_back(graph_of(kCleanHandshake));
  graphs.push_back(graph_of(kRealDeadlock));
  CertifyOptions options;
  options.parallel.threads = 16;
  const std::vector<CertifyResult> results = certify_batch(graphs, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].certified_free);
  EXPECT_FALSE(results[1].certified_free);
  const std::vector<CertifyResult> serial = certify_batch(graphs, {});
  ASSERT_EQ(serial.size(), 2u);
  EXPECT_EQ(results[0].certified_free, serial[0].certified_free);
  EXPECT_EQ(results[1].certified_free, serial[1].certified_free);
}

TEST(Certifier, ByteBudgetIsReportedNotFatal) {
  CertifyOptions options;
  options.budget.max_bytes = 1;  // below any real scratch estimate
  const CertifyResult r = certify_graph(graph_of(kLemma2Spurious), options);
  EXPECT_FALSE(r.certified_free) << "an unswept graph certifies nothing";
  EXPECT_TRUE(r.budget_exceeded);
  EXPECT_EQ(r.budget_cap, "bytes");
}

TEST(Certifier, UnlimitedAndGenerousBudgetsChangeNothing) {
  EXPECT_TRUE(CertifyBudget{}.unlimited());
  const CertifyResult plain = certify_graph(graph_of(kRealDeadlock), {});
  EXPECT_FALSE(plain.budget_exceeded);
  EXPECT_TRUE(plain.budget_cap.empty());

  CertifyOptions generous;
  generous.budget.max_millis = 60'000;
  generous.budget.max_bytes = 1u << 30;
  const CertifyResult r = certify_graph(graph_of(kCleanHandshake), generous);
  EXPECT_TRUE(r.certified_free);
  EXPECT_FALSE(r.budget_exceeded);
}

TEST(RefinedDetector, ExpiredDeadlineStopsTheSweepCleanly) {
  const sg::SyncGraph g = graph_of(kLemma2Spurious);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    RefinedOptions options;
    options.parallel.threads = threads;
    options.deadline =
        std::chrono::steady_clock::now() - std::chrono::seconds(1);
    const RefinedResult r = run_refined(g, options);
    EXPECT_TRUE(r.deadline_hit) << threads << " thread(s)";
    // No hit before the cut: the miss proves nothing, and certify_graph's
    // plumbing (covered above) turns this into budget_exceeded.
    EXPECT_FALSE(r.deadlock_possible);
  }
}

TEST(Certifier, AlgorithmNames) {
  EXPECT_EQ(algorithm_name(Algorithm::Naive), "naive");
  EXPECT_EQ(algorithm_name(Algorithm::RefinedSingle), "refined");
  EXPECT_EQ(algorithm_name(Algorithm::RefinedHeadPair), "refined+pairs");
  EXPECT_EQ(algorithm_name(Algorithm::RefinedHeadTail), "refined+headtail");
  EXPECT_EQ(algorithm_name(Algorithm::RefinedHeadTailPairs),
            "refined+ht-pairs");
}

}  // namespace
}  // namespace siwa::core
