#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "farm/manifest.h"
#include "farm/master.h"
#include "farm/protocol.h"
#include "farm/worker.h"
#include "server/jsonl.h"

namespace siwa::farm {
namespace {

namespace jsonl = server::jsonl;

// ----- corpus fixtures -----

// Two tasks, one completed rendezvous: certified free.
constexpr const char* kFreeGraph = R"(task left
task right
node 2 left right.msg +
node 3 right right.msg -
entry left 2
entry right 3
cedge b 2
cedge 2 e
cedge b 3
cedge 3 e
)";

// Mutual wait: each task sends first and accepts second, crosswise.
constexpr const char* kCycleGraph = R"(task t1
task t2
node 2 t1 t2.m1 +
node 3 t2 t1.m2 +
node 4 t1 t1.m2 -
node 5 t2 t2.m1 -
entry t1 2
entry t2 3
cedge b 2
cedge 2 4
cedge 4 e
cedge b 3
cedge 3 5
cedge 5 e
)";

constexpr const char* kFreeMada =
    "task a is begin send b.d; accept ack; end a;\n"
    "task b is begin accept d; send a.ack; end b;\n";

constexpr const char* kBrokenMada = "task broken is begin send ; end\n";

std::string test_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("siwa_farm_" + name);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string write_file(const std::string& dir, const std::string& name,
                       std::string_view content) {
  const std::string path = (std::filesystem::path(dir) / name).string();
  std::ofstream out(path);
  out << content;
  return path;
}

// Writes the five-entry corpus (free/cycle/broken graphs, free/broken
// MiniAda) and lists it `rounds` times over — repeated entries are legal
// and give every worker several jobs when the fault tests need that.
Manifest corpus(const std::string& dir, std::size_t rounds = 1) {
  write_file(dir, "free.sg", kFreeGraph);
  write_file(dir, "cycle.sg", kCycleGraph);
  write_file(dir, "broken.sg", "bogus record\n");
  write_file(dir, "handshake.mada", kFreeMada);
  write_file(dir, "broken.mada", kBrokenMada);
  std::string listing;
  for (std::size_t i = 0; i < rounds; ++i)
    listing += "free.sg\ncycle.sg\nbroken.sg\nhandshake.mada\nbroken.mada\n";
  return parse_manifest(listing, dir);
}

// The per-round expected verdicts for `corpus`.
const std::vector<JobStatus> kCorpusStatuses = {
    JobStatus::Free, JobStatus::Flagged, JobStatus::Error, JobStatus::Free,
    JobStatus::Flagged};

void expect_reports_equal(const FarmReport& a, const FarmReport& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const JobResult& ra = a.results[i];
    const JobResult& rb = b.results[i];
    EXPECT_EQ(ra.id, rb.id) << "job " << i;
    EXPECT_EQ(ra.status, rb.status) << "job " << i;
    EXPECT_EQ(ra.detail, rb.detail) << "job " << i;
    EXPECT_EQ(ra.budget_exceeded, rb.budget_exceeded) << "job " << i;
    EXPECT_EQ(ra.budget_cap, rb.budget_cap) << "job " << i;
    EXPECT_EQ(ra.witness, rb.witness) << "job " << i;
    EXPECT_EQ(ra.counters, rb.counters) << "job " << i;
    ASSERT_EQ(ra.diagnostics.size(), rb.diagnostics.size()) << "job " << i;
    for (std::size_t d = 0; d < ra.diagnostics.size(); ++d)
      EXPECT_EQ(ra.diagnostics[d].to_string(), rb.diagnostics[d].to_string());
  }
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.merged_counters, b.merged_counters);
  EXPECT_EQ(a.flagged_count(), b.flagged_count());
  EXPECT_EQ(a.internal_error, b.internal_error);
}

// Sets an environment variable for the duration of a test.
class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

// ----- manifest -----

TEST(FarmManifest, ClassifiesByExtension) {
  EXPECT_EQ(classify_entry("corpus/a.mada"), EntryKind::MiniAda);
  EXPECT_EQ(classify_entry("corpus/a.sg"), EntryKind::SyncGraph);
  EXPECT_EQ(classify_entry("a.mada.bak"), EntryKind::SyncGraph);
  EXPECT_EQ(classify_entry(""), EntryKind::SyncGraph);
}

TEST(FarmManifest, ParsesCommentsBlanksAndBaseDir) {
  const Manifest m = parse_manifest(
      "# corpus header\n"
      "\n"
      "  free.sg   # trailing comment\n"
      "sub/handshake.mada\r\n"
      "/abs/path.sg\n",
      "/base");
  ASSERT_EQ(m.entries.size(), 3u);
  EXPECT_EQ(m.entries[0].index, 0u);
  EXPECT_EQ(m.entries[0].path, "/base/free.sg");
  EXPECT_EQ(m.entries[0].kind, EntryKind::SyncGraph);
  EXPECT_EQ(m.entries[1].index, 1u);
  EXPECT_EQ(m.entries[1].path, "/base/sub/handshake.mada");
  EXPECT_EQ(m.entries[1].kind, EntryKind::MiniAda);
  // Absolute entries are not re-anchored.
  EXPECT_EQ(m.entries[2].path, "/abs/path.sg");
}

TEST(FarmManifest, LoadReportsMissingFile) {
  std::string error;
  EXPECT_FALSE(load_manifest("/nonexistent/manifest.txt", &error));
  EXPECT_NE(error.find("cannot read manifest"), std::string::npos);
}

TEST(FarmManifest, LoadResolvesAgainstManifestDirectory) {
  const std::string dir = test_dir("manifest_dir");
  write_file(dir, "free.sg", kFreeGraph);
  const std::string path = write_file(dir, "corpus.txt", "free.sg\n");
  std::string error;
  const auto m = load_manifest(path, &error);
  ASSERT_TRUE(m.has_value()) << error;
  ASSERT_EQ(m->entries.size(), 1u);
  EXPECT_TRUE(std::filesystem::exists(m->entries[0].path));
}

// ----- protocol -----

TEST(FarmProtocol, RequestRoundTrip) {
  JobRequest request;
  request.id = 42;
  request.path = "dir/with \"quotes\".mada";
  request.kind = EntryKind::MiniAda;
  request.budget_ms = 1500;
  request.budget_bytes = 1 << 20;

  std::string error;
  const auto doc = jsonl::parse_request(job_request_line(request), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(jsonl::method(*doc), "job");
  const auto parsed = parse_job_request(*doc, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->id, request.id);
  EXPECT_EQ(parsed->path, request.path);
  EXPECT_EQ(parsed->kind, request.kind);
  EXPECT_EQ(parsed->budget_ms, request.budget_ms);
  EXPECT_EQ(parsed->budget_bytes, request.budget_bytes);
}

TEST(FarmProtocol, RequestRejectsMissingOrIllTypedFields) {
  auto reject = [](const char* line, const char* why) {
    std::string error;
    const auto doc = jsonl::parse_request(line, &error);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_FALSE(parse_job_request(*doc, &error)) << line;
    EXPECT_NE(error.find("\"ok\":false"), std::string::npos) << line;
    EXPECT_NE(error.find(why), std::string::npos) << line;
  };
  reject(R"({"method":"job","path":"x","kind":"sg"})", "id");
  reject(R"({"method":"job","id":1,"kind":"sg"})", "path");
  reject(R"({"method":"job","id":1,"path":"x","kind":"nope"})", "kind");
  reject(R"({"method":"job","id":-3,"path":"x","kind":"sg"})", "id");
}

TEST(FarmProtocol, ResponseRoundTripsDiagnosticsWitnessAndCounters) {
  JobResult result;
  result.id = 7;
  result.status = JobStatus::Flagged;
  result.budget_exceeded = true;
  result.budget_cap = "millis";
  result.detail = "budget exceeded (millis)";
  Diagnostic d;
  d.severity = Severity::Warning;
  d.loc = {3, 14};
  d.message = "possible \"infinite\" wait";
  d.rule_id = "SIWA010";
  d.related.push_back({{5, 2}, "the other rendezvous"});
  result.diagnostics.push_back(d);
  result.witness = {"t1 waits on t2.m1", "t2 waits on t1.m2"};
  result.counters = {{"certify.hypotheses", 12}, {"clg.edges", 40}};

  const auto parsed = parse_job_response(job_response_line(result));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id, result.id);
  EXPECT_EQ(parsed->status, result.status);
  EXPECT_TRUE(parsed->budget_exceeded);
  EXPECT_EQ(parsed->budget_cap, result.budget_cap);
  EXPECT_EQ(parsed->detail, result.detail);
  EXPECT_EQ(parsed->witness, result.witness);
  EXPECT_EQ(parsed->counters, result.counters);
  ASSERT_EQ(parsed->diagnostics.size(), 1u);
  EXPECT_EQ(parsed->diagnostics[0].to_string(), d.to_string());
  ASSERT_EQ(parsed->diagnostics[0].related.size(), 1u);
  EXPECT_EQ(parsed->diagnostics[0].related[0].note, "the other rendezvous");
  // The re-rendered line is byte-identical — what the master's SARIF
  // equivalence with batch_report rests on.
  EXPECT_EQ(job_response_line(*parsed), job_response_line(result));
}

TEST(FarmProtocol, ResponseRejectsTransportGarbage) {
  // Anything that is not a complete well-typed response is a broken worker.
  EXPECT_FALSE(parse_job_response(""));
  EXPECT_FALSE(parse_job_response("not json"));
  EXPECT_FALSE(parse_job_response(R"({"ok":false,"error":"boom"})"));
  EXPECT_FALSE(parse_job_response(R"({"ok":true,"method":"shutdown"})"));
  EXPECT_FALSE(parse_job_response(
      R"({"ok":true,"method":"job","id":1,"status":"maybe","flagged":false,)"
      R"("budget_exceeded":false,"budget_cap":"","detail":"",)"
      R"("diagnostics":[],"witness":[],"counters":{}})"));
  // A truncated prefix of a valid line (the truncate fault injection).
  const std::string full = job_response_line(JobResult{});
  EXPECT_FALSE(parse_job_response(
      std::string_view(full).substr(0, full.size() / 2)));
}

TEST(FarmProtocol, LineSplitterReassemblesChunks) {
  jsonl::LineSplitter splitter;
  splitter.feed("{\"a\":1}\n{\"b\"");
  auto lines = splitter.take_lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(splitter.partial(), "{\"b\"");
  splitter.feed(":2}\n");
  lines = splitter.take_lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"b\":2}");
  EXPECT_TRUE(splitter.partial().empty());
}

// ----- worker -----

TEST(FarmWorkerTest, HandlesShutdownAndBadRequests) {
  FarmWorker worker;
  EXPECT_NE(worker.handle_line("garbage").find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(worker.handle_line(R"({"method":"frobnicate"})")
                .find("unknown method"),
            std::string::npos);
  EXPECT_FALSE(worker.shutdown_requested());
  EXPECT_NE(worker.handle_line(shutdown_request_line())
                .find("\"shutting_down\":true"),
            std::string::npos);
  EXPECT_TRUE(worker.shutdown_requested());
}

TEST(FarmWorkerTest, JobVerdictsPerEntryKind) {
  const std::string dir = test_dir("worker_verdicts");
  const Manifest m = corpus(dir);
  const FarmWorker worker;

  auto run = [&](std::size_t i) {
    JobRequest request;
    request.id = i;
    request.path = m.entries[i].path;
    request.kind = m.entries[i].kind;
    return worker.run_job(request);
  };

  EXPECT_EQ(run(0).status, JobStatus::Free);

  const JobResult cycle = run(1);
  EXPECT_EQ(cycle.status, JobStatus::Flagged);
  EXPECT_FALSE(cycle.witness.empty());
  EXPECT_FALSE(cycle.counters.empty());

  const JobResult broken = run(2);
  EXPECT_EQ(broken.status, JobStatus::Error);
  EXPECT_NE(broken.detail.find("parse error"), std::string::npos);

  EXPECT_EQ(run(3).status, JobStatus::Free);

  const JobResult broken_mada = run(4);
  EXPECT_EQ(broken_mada.status, JobStatus::Flagged);
  EXPECT_FALSE(broken_mada.diagnostics.empty());

  JobRequest missing;
  missing.id = 99;
  missing.path = dir + "/does_not_exist.sg";
  const JobResult unreadable = worker.run_job(missing);
  EXPECT_EQ(unreadable.status, JobStatus::Error);
  EXPECT_NE(unreadable.detail.find("cannot read"), std::string::npos);
}

TEST(FarmWorkerTest, ByteBudgetIsAVerdictNotAFault) {
  const std::string dir = test_dir("worker_budget");
  const std::string path = write_file(dir, "cycle.sg", kCycleGraph);
  const FarmWorker worker;
  JobRequest request;
  request.path = path;
  request.budget_bytes = 1;  // far below any real scratch estimate
  const JobResult result = worker.run_job(request);
  EXPECT_EQ(result.status, JobStatus::Error);
  EXPECT_TRUE(result.budget_exceeded);
  EXPECT_EQ(result.budget_cap, "bytes");
  EXPECT_NE(result.detail.find("budget exceeded"), std::string::npos);
}

TEST(FarmWorkerTest, CyclicControlFlowIsRejectedNotLoopedOn) {
  const std::string dir = test_dir("worker_cyclic");
  const std::string path = write_file(dir, "loop.sg",
                                      "task t\n"
                                      "node 2 t t.m +\n"
                                      "node 3 t t.m -\n"
                                      "entry t 2\n"
                                      "cedge b 2\n"
                                      "cedge 2 3\n"
                                      "cedge 3 2\n"
                                      "cedge 3 e\n");
  const FarmWorker worker;
  JobRequest request;
  request.path = path;
  const JobResult result = worker.run_job(request);
  EXPECT_EQ(result.status, JobStatus::Error);
  EXPECT_NE(result.detail.find("cyclic control flow"), std::string::npos);
}

// ----- master, in-process mode -----

TEST(FarmMaster, EmptyManifestIsAnEmptyReport) {
  const FarmReport report = run_farm(Manifest{}, FarmOptions{});
  EXPECT_TRUE(report.results.empty());
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_TRUE(report.merged_counters.empty());
  EXPECT_FALSE(report.internal_error);
  EXPECT_EQ(report.flagged_count(), 0u);
}

TEST(FarmMaster, InProcessMatchesDirectWorkerRuns) {
  const std::string dir = test_dir("inprocess");
  const Manifest m = corpus(dir);
  const FarmReport report = run_farm(m, FarmOptions{});

  ASSERT_EQ(report.results.size(), m.entries.size());
  const FarmWorker worker;
  std::map<std::string, std::uint64_t> expected_counters;
  for (std::size_t i = 0; i < m.entries.size(); ++i) {
    JobRequest request;
    request.id = i;
    request.path = m.entries[i].path;
    request.kind = m.entries[i].kind;
    const JobResult direct = worker.run_job(request);
    EXPECT_EQ(report.results[i].status, kCorpusStatuses[i]) << "job " << i;
    EXPECT_EQ(report.results[i].status, direct.status) << "job " << i;
    EXPECT_EQ(report.results[i].witness, direct.witness) << "job " << i;
    for (const auto& [name, value] : direct.counters)
      expected_counters[name] += value;
  }
  // Merged counters are exactly the per-job sums.
  EXPECT_EQ(report.merged_counters, expected_counters);
  EXPECT_EQ(report.flagged_count(), 2u);
  EXPECT_EQ(report.stats.worker_deaths, 0u);
  EXPECT_EQ(report.stats.retries, 0u);
}

// ----- master, subprocess scheduling against a worker that cannot speak -----

// /bin/false exits immediately without reading a request: every dispatch is
// a transport failure, which drives the retry -> quarantine machinery
// deterministically with no fault-injection environment needed.
TEST(FarmMaster, SilentWorkerQuarantinesAfterBoundedRetries) {
  const std::string dir = test_dir("silent_worker");
  write_file(dir, "free.sg", kFreeGraph);
  const Manifest m = parse_manifest("free.sg\n", dir);

  FarmOptions options;
  options.workers = 1;
  options.worker_command = {"/bin/false"};
  options.max_retries = 2;
  options.max_respawns = 10;
  const FarmReport report = run_farm(m, options);

  ASSERT_EQ(report.quarantined, (std::vector<std::size_t>{0}));
  EXPECT_EQ(report.results[0].status, JobStatus::Error);
  EXPECT_NE(report.results[0].detail.find("quarantined after 3"),
            std::string::npos);
  EXPECT_EQ(report.stats.retries, 2u);
  EXPECT_EQ(report.stats.worker_deaths, 3u);
  EXPECT_EQ(report.stats.respawns, 2u);
  EXPECT_FALSE(report.internal_error);
  EXPECT_TRUE(report.merged_counters.empty());
}

TEST(FarmMaster, RespawnBudgetExhaustionIsAnInternalError) {
  const std::string dir = test_dir("respawn_budget");
  write_file(dir, "free.sg", kFreeGraph);
  const Manifest m = parse_manifest("free.sg\nfree.sg\n", dir);

  FarmOptions options;
  options.workers = 1;
  options.worker_command = {"/bin/false"};
  options.max_respawns = 0;
  const FarmReport report = run_farm(m, options);

  EXPECT_TRUE(report.internal_error);
  EXPECT_FALSE(report.error.empty());
  for (const JobResult& r : report.results) {
    EXPECT_EQ(r.status, JobStatus::Error);
    EXPECT_EQ(r.detail, "not attempted");
  }
}

// ----- subprocess fault injection against the real siwa_farm worker -----
//
// SIWA_FARM_BIN points at the built siwa_farm binary; each scenario must
// land on the byte-for-byte report of a clean in-process run.
#ifdef SIWA_FARM_BIN

FarmOptions subprocess_options(std::size_t workers) {
  FarmOptions options;
  options.workers = workers;
  options.worker_command = {SIWA_FARM_BIN, "--worker"};
  return options;
}

TEST(FarmSubprocess, MatchesInProcessReport) {
  const std::string dir = test_dir("subprocess_clean");
  const Manifest m = corpus(dir, 2);
  const FarmReport expected = run_farm(m, FarmOptions{});
  const FarmReport actual = run_farm(m, subprocess_options(3));
  EXPECT_EQ(actual.stats.worker_deaths, 0u);
  expect_reports_equal(actual, expected);
}

TEST(FarmSubprocess, KilledWorkerDoesNotChangeTheReport) {
  const std::string dir = test_dir("subprocess_kill");
  const Manifest m = corpus(dir, 3);
  const FarmReport expected = run_farm(m, FarmOptions{});

  // Kill worker 1 after it reads its *first* job: the master feeds every
  // spawned worker one job up front, so the fault always fires (a later
  // ordinal could starve on a loaded machine when the other workers drain
  // the queue first). The respawned worker gets a fresh id, so the spec
  // never re-arms.
  const EnvGuard kill("SIWA_FARM_KILL_WORKER", "1:1");
  const FarmReport actual = run_farm(m, subprocess_options(4));
  EXPECT_GE(actual.stats.worker_deaths, 1u);
  EXPECT_GE(actual.stats.retries + actual.stats.respawns, 1u);
  expect_reports_equal(actual, expected);
}

TEST(FarmSubprocess, TruncatedResponseIsRetriedInvisibly) {
  const std::string dir = test_dir("subprocess_truncate");
  const Manifest m = corpus(dir, 2);
  const FarmReport expected = run_farm(m, FarmOptions{});

  const EnvGuard truncate("SIWA_FARM_TRUNCATE_WORKER", "0:1");
  const FarmReport actual = run_farm(m, subprocess_options(2));
  EXPECT_GE(actual.stats.worker_deaths, 1u);
  expect_reports_equal(actual, expected);
}

TEST(FarmSubprocess, PoisonJobIsQuarantinedOthersUnaffected) {
  const std::string dir = test_dir("subprocess_poison");
  const Manifest m = corpus(dir);  // entry 1 is cycle.sg
  const FarmReport clean = run_farm(m, FarmOptions{});

  const EnvGuard poison("SIWA_FARM_POISON", "cycle");
  const FarmReport actual = run_farm(m, subprocess_options(2));
  ASSERT_EQ(actual.quarantined, (std::vector<std::size_t>{1}));
  EXPECT_EQ(actual.results[1].status, JobStatus::Error);
  EXPECT_NE(actual.results[1].detail.find("quarantined"), std::string::npos);
  EXPECT_EQ(actual.stats.retries, 2u);
  EXPECT_GE(actual.stats.worker_deaths, 3u);
  // Every other entry's verdict and counters match the clean run.
  for (std::size_t i = 0; i < m.entries.size(); ++i) {
    if (i == 1) continue;
    EXPECT_EQ(actual.results[i].status, clean.results[i].status) << i;
    EXPECT_EQ(actual.results[i].counters, clean.results[i].counters) << i;
  }
}

#endif  // SIWA_FARM_BIN

}  // namespace
}  // namespace siwa::farm
