#include <gtest/gtest.h>

#include "graph/scc.h"
#include "lang/parser.h"
#include "syncgraph/builder.h"
#include "syncgraph/clg.h"
#include "syncgraph/export.h"
#include "syncgraph/sync_graph.h"

namespace siwa::sg {
namespace {

lang::Program parse(const char* source) {
  return lang::parse_and_check_or_throw(source);
}

// Node lookup helpers for tests: nth rendezvous node of a named task.
NodeId nth_node(const SyncGraph& g, const std::string& task, std::size_t n) {
  for (std::size_t t = 0; t < g.task_count(); ++t)
    if (g.task_name(TaskId(t)) == task) return g.nodes_of_task(TaskId(t))[n];
  ADD_FAILURE() << "no task " << task;
  return NodeId::invalid();
}

TEST(SyncGraph, BuildsFigure1LikeProgram) {
  const SyncGraph g = build_sync_graph(parse(R"(
task t1 is begin send t2.sig1; accept sig2; end t1;
task t2 is begin accept sig1; accept sig1; end t2;
task t3 is begin send t2.sig1; send t1.sig2; end t3;
)"));
  EXPECT_EQ(g.task_count(), 3u);
  EXPECT_EQ(g.node_count(), 2u + 6u);  // b, e, six rendezvous
  EXPECT_TRUE(g.validate(/*program_derived=*/true).empty());

  // Sync edges: the two sig1 sends pair with both accepts (4 edges), the
  // sig2 send pairs with its accept (1 edge).
  EXPECT_EQ(g.sync_edge_count(), 5u);

  const NodeId send_sig1 = nth_node(g, "t1", 0);
  const NodeId accept1 = nth_node(g, "t2", 0);
  const NodeId accept2 = nth_node(g, "t2", 1);
  EXPECT_TRUE(g.has_sync_edge(send_sig1, accept1));
  EXPECT_TRUE(g.has_sync_edge(send_sig1, accept2));
  EXPECT_FALSE(g.has_sync_edge(accept1, accept2));

  // Control chain within t2: b -> accept1 -> accept2 -> e.
  ASSERT_EQ(g.task_entries(TaskId(1)).size(), 1u);
  EXPECT_EQ(g.task_entries(TaskId(1))[0], accept1);
  ASSERT_EQ(g.control_successors(accept1).size(), 1u);
  EXPECT_EQ(g.control_successors(accept1)[0], accept2);
  ASSERT_EQ(g.control_successors(accept2).size(), 1u);
  EXPECT_EQ(g.control_successors(accept2)[0], g.end_node());
}

TEST(SyncGraph, DescribeUsesPaperNotation) {
  const SyncGraph g = build_sync_graph(parse(R"(
task t1 is begin send t2.sig1; end t1;
task t2 is begin accept sig1; end t2;
)"));
  const std::string desc = g.describe(nth_node(g, "t1", 0));
  EXPECT_NE(desc.find("(t2, sig1, +)"), std::string::npos);
  EXPECT_EQ(g.describe(g.begin_node()), "b");
  EXPECT_EQ(g.describe(g.end_node()), "e");
}

TEST(SyncGraph, ConditionalBranchesShareSuccessors) {
  const SyncGraph g = build_sync_graph(parse(R"(
task t is
begin
  if c then
    accept m1;
  else
    accept m2;
  end if;
  accept m3;
end t;
task u is begin send t.m1; send t.m2; send t.m3; end u;
)"));
  const NodeId m1 = nth_node(g, "t", 0);
  const NodeId m2 = nth_node(g, "t", 1);
  const NodeId m3 = nth_node(g, "t", 2);
  // Both arms are task entries; both lead to m3.
  const auto entries = g.task_entries(TaskId(0));
  EXPECT_EQ(entries.size(), 2u);
  ASSERT_EQ(g.control_successors(m1).size(), 1u);
  EXPECT_EQ(g.control_successors(m1)[0], m3);
  ASSERT_EQ(g.control_successors(m2).size(), 1u);
  EXPECT_EQ(g.control_successors(m2)[0], m3);
}

TEST(SyncGraph, EmptyElseSkipsToSuccessor) {
  const SyncGraph g = build_sync_graph(parse(R"(
task t is
begin
  accept m1;
  if c then
    accept m2;
  end if;
  accept m3;
end t;
task u is begin send t.m1; send t.m2; send t.m3; end u;
)"));
  const NodeId m1 = nth_node(g, "t", 0);
  const NodeId m3 = nth_node(g, "t", 2);
  // m1 -> m2 (then-arm) and m1 -> m3 (skip path).
  const auto succs = g.control_successors(m1);
  EXPECT_EQ(succs.size(), 2u);
  EXPECT_TRUE((succs[0] == m3) || (succs[1] == m3));
}

TEST(SyncGraph, LoopCreatesBackEdgeAndSkipPath) {
  const SyncGraph g = build_sync_graph(parse(R"(
task t is
begin
  accept m1;
  while c loop
    accept m2;
  end loop;
  accept m3;
end t;
task u is begin send t.m1; send t.m2; send t.m3; end u;
)"));
  const NodeId m1 = nth_node(g, "t", 0);
  const NodeId m2 = nth_node(g, "t", 1);
  const NodeId m3 = nth_node(g, "t", 2);
  auto has = [&](NodeId from, NodeId to) {
    for (NodeId s : g.control_successors(from))
      if (s == to) return true;
    return false;
  };
  EXPECT_TRUE(has(m1, m2));
  EXPECT_TRUE(has(m1, m3));  // zero iterations
  EXPECT_TRUE(has(m2, m2));  // back edge
  EXPECT_TRUE(has(m2, m3));
}

TEST(SyncGraph, TaskWithoutRendezvousEntersAtEnd) {
  const SyncGraph g = build_sync_graph(parse(R"(
task idle is begin null; end idle;
task t is begin accept m; end t;
task u is begin send t.m; end u;
)"));
  ASSERT_EQ(g.task_entries(TaskId(0)).size(), 1u);
  EXPECT_EQ(g.task_entries(TaskId(0))[0], g.end_node());
}

TEST(SyncGraph, ValidateCatchesCrossTaskControlEdge) {
  SyncGraph g;
  const TaskId t1 = g.add_task("a");
  const TaskId t2 = g.add_task("b");
  const Symbol m = g.intern_message("m");
  const NodeId r = g.add_rendezvous(t1, g.intern_signal(t2, m), Sign::Plus);
  const NodeId s = g.add_rendezvous(t2, g.intern_signal(t2, m), Sign::Minus);
  g.add_control_edge(g.begin_node(), r);
  g.add_task_entry(t1, r);
  g.add_control_edge(g.begin_node(), s);
  g.add_task_entry(t2, s);
  g.add_control_edge(r, s);  // crosses tasks: invalid
  g.finalize();
  EXPECT_FALSE(g.validate(true).empty());
}

TEST(SyncGraph, ValidateCatchesMisplacedAccept) {
  SyncGraph g;
  const TaskId t1 = g.add_task("a");
  const TaskId t2 = g.add_task("b");
  const Symbol m = g.intern_message("m");
  // Accept of signal (t2, m) placed in task t1: impossible in a program.
  const NodeId r = g.add_rendezvous(t1, g.intern_signal(t2, m), Sign::Minus);
  g.add_control_edge(g.begin_node(), r);
  g.add_task_entry(t1, r);
  g.finalize();
  EXPECT_FALSE(g.validate(true).empty());
  // But legal as a raw gadget graph.
  SyncGraph g2;
  const TaskId u1 = g2.add_task("a");
  const TaskId u2 = g2.add_task("b");
  const NodeId r2 =
      g2.add_rendezvous(u1, g2.intern_signal(u2, g2.intern_message("m")),
                        Sign::Minus);
  g2.add_control_edge(g2.begin_node(), r2);
  g2.add_task_entry(u1, r2);
  g2.add_task_entry(u2, g2.end_node());  // b holds no rendezvous
  g2.finalize();
  EXPECT_TRUE(g2.validate(false).empty());
}

// Figure 4(a)/(b): a cycle that exists purely in sync edges (entering and
// leaving nodes without traversing control edges) must disappear in the
// CLG, whose node splitting enforces constraint 1b.
TEST(Clg, Figure4SyncOnlyCycleBroken) {
  SyncGraph g;
  const TaskId tr = g.add_task("task_r");
  const TaskId ts = g.add_task("task_s");
  const TaskId tt = g.add_task("task_t");
  const TaskId tu = g.add_task("task_u");
  const Symbol m = g.intern_message("m");
  const NodeId r = g.add_rendezvous(tr, g.intern_signal(tt, m), Sign::Plus);
  const NodeId s = g.add_rendezvous(ts, g.intern_signal(tu, m), Sign::Plus);
  const NodeId t = g.add_rendezvous(tt, g.intern_signal(tt, m), Sign::Minus);
  const NodeId u = g.add_rendezvous(tu, g.intern_signal(tu, m), Sign::Minus);
  for (auto [task, node] :
       {std::pair{tr, r}, {ts, s}, {tt, t}, {tu, u}}) {
    g.add_control_edge(g.begin_node(), node);
    g.add_task_entry(task, node);
    g.add_control_edge(node, g.end_node());
  }
  // Close the undirected sync cycle r - t - s - u - r.
  g.add_explicit_sync_edge(t, s);
  g.add_explicit_sync_edge(u, r);
  g.finalize();

  // The raw sync graph, with sync edges traversable both ways, contains the
  // cycle r-t-s-u; the CLG must not.
  const Clg clg(g);
  EXPECT_FALSE(graph::has_cycle(clg.graph()));
}

TEST(Clg, ConstructionCountsMatchDefinition) {
  const SyncGraph g = build_sync_graph(parse(R"(
task t1 is begin send t2.m; end t1;
task t2 is begin accept m; end t2;
)"));
  const Clg clg(g);
  // 2 distinguished + 2 per rendezvous node.
  EXPECT_EQ(clg.node_count(), 2u + 2u * 2u);
  // Edges: 2 internal (step 3) + per-control (b->r_o or r_i->e: 4 control
  // edges exist: b->send, send->e, b->accept, accept->e) + 2 per sync edge.
  EXPECT_EQ(clg.edge_count(), 2u + 4u + 2u);
  EXPECT_EQ(clg.origin(clg.in_of(NodeId(2))), NodeId(2));
  EXPECT_EQ(clg.origin(clg.out_of(NodeId(2))), NodeId(2));
  EXPECT_TRUE(clg.is_in_node(clg.in_of(NodeId(2))));
  EXPECT_FALSE(clg.is_in_node(clg.out_of(NodeId(2))));
}

TEST(Clg, SyncEdgeClassification) {
  const SyncGraph g = build_sync_graph(parse(R"(
task t1 is begin send t2.m; end t1;
task t2 is begin accept m; end t2;
)"));
  const Clg clg(g);
  const NodeId send(2);
  const NodeId accept(3);
  EXPECT_TRUE(clg.is_sync_edge(clg.out_of(send), clg.in_of(accept)));
  EXPECT_TRUE(clg.is_sync_edge(clg.out_of(accept), clg.in_of(send)));
  // Internal r_o -> r_i edge is not a sync edge.
  EXPECT_FALSE(clg.is_sync_edge(clg.out_of(send), clg.in_of(send)));
}

TEST(Clg, AcyclicForHandshake) {
  const SyncGraph g = build_sync_graph(parse(R"(
task a is begin send b.d; accept ack; end a;
task b is begin accept d; send a.ack; end b;
)"));
  EXPECT_FALSE(graph::has_cycle(Clg(g).graph()));
}

TEST(Clg, CycleForMutualWait) {
  // a waits for b's request while b waits for a's: a real deadlock shape.
  const SyncGraph g = build_sync_graph(parse(R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)"));
  EXPECT_TRUE(graph::has_cycle(Clg(g).graph()));
}

TEST(Export, DotContainsClustersAndEdges) {
  const SyncGraph g = build_sync_graph(parse(R"(
task t1 is begin send t2.m; end t1;
task t2 is begin accept m; end t2;
)"));
  const std::string dot = sync_graph_to_dot(g, "fig");
  EXPECT_NE(dot.find("cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  const std::string clg_dot = clg_to_dot(g, Clg(g), "clg");
  EXPECT_NE(clg_dot.find("_i"), std::string::npos);
  EXPECT_NE(clg_dot.find("_o"), std::string::npos);
}

TEST(Export, JsonListsEdges) {
  const SyncGraph g = build_sync_graph(parse(R"(
task t1 is begin send t2.m; end t1;
task t2 is begin accept m; end t2;
)"));
  const std::string json = sync_graph_to_json(g);
  EXPECT_NE(json.find("\"tasks\""), std::string::npos);
  EXPECT_NE(json.find("\"sync_edges\""), std::string::npos);
}

}  // namespace
}  // namespace siwa::sg
