#include <gtest/gtest.h>

#include "lang/ast.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "lang/sema.h"

namespace siwa::lang {
namespace {

constexpr const char* kFigure1Source = R"(
-- The program of Figure 1 of the paper.
task t1 is
begin
  send t2.sig1;   -- (t2, sig1, +)
  accept sig2;    -- (t1, sig2, -)
end t1;

task t2 is
begin
  accept sig1;
  accept sig1;
end t2;

task t3 is
begin
  send t2.sig1;
  send t1.sig2;
end t3;
)";

TEST(Lexer, TokenizesKeywordsAndIdentifiers) {
  DiagnosticSink sink;
  const auto tokens = lex("task T1 is begin send t2.m; end T1;", sink);
  ASSERT_FALSE(sink.has_errors());
  ASSERT_GE(tokens.size(), 12u);
  EXPECT_EQ(tokens[0].kind, TokenKind::KwTask);
  EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[1].text, "t1");  // case-insensitive, lowered
  EXPECT_EQ(tokens.back().kind, TokenKind::EndOfFile);
}

TEST(Lexer, CommentsAreSkipped) {
  DiagnosticSink sink;
  const auto tokens = lex("-- a comment\nnull; -- trailing\n", sink);
  ASSERT_FALSE(sink.has_errors());
  EXPECT_EQ(tokens[0].kind, TokenKind::KwNull);
  EXPECT_EQ(tokens[1].kind, TokenKind::Semicolon);
  EXPECT_EQ(tokens[2].kind, TokenKind::EndOfFile);
}

TEST(Lexer, TracksLocations) {
  DiagnosticSink sink;
  const auto tokens = lex("null;\n  accept m;", sink);
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[0].loc.column, 1);
  EXPECT_EQ(tokens[2].loc.line, 2);
  EXPECT_EQ(tokens[2].loc.column, 3);
}

TEST(Lexer, ReportsUnknownCharacters) {
  DiagnosticSink sink;
  lex("task $ is", sink);
  EXPECT_TRUE(sink.has_errors());
}

TEST(Parser, ParsesFigure1) {
  DiagnosticSink sink;
  const auto program = parse_program(kFigure1Source, sink);
  ASSERT_TRUE(program.has_value()) << sink.to_string();
  ASSERT_EQ(program->tasks.size(), 3u);
  EXPECT_EQ(program->name_of(program->tasks[0].name), "t1");
  ASSERT_EQ(program->tasks[0].body.size(), 2u);
  EXPECT_EQ(program->tasks[0].body[0].kind, StmtKind::Send);
  EXPECT_EQ(program->tasks[0].body[1].kind, StmtKind::Accept);
}

TEST(Parser, IfElseAndWhile) {
  DiagnosticSink sink;
  const auto program = parse_program(R"(
task t is
begin
  if c then
    accept m;
  else
    null;
  end if;
  while w loop
    accept m;
  end loop;
end t;
task u is begin send t.m; end u;
)",
                                     sink);
  ASSERT_TRUE(program.has_value()) << sink.to_string();
  const auto& body = program->tasks[0].body;
  ASSERT_EQ(body.size(), 2u);
  EXPECT_EQ(body[0].kind, StmtKind::If);
  EXPECT_EQ(body[0].body.size(), 1u);
  EXPECT_EQ(body[0].orelse.size(), 1u);
  EXPECT_EQ(body[1].kind, StmtKind::While);
}

TEST(Parser, ElsifDesugarsToNestedIf) {
  DiagnosticSink sink;
  const auto program = parse_program(R"(
task t is
begin
  if a then
    accept m1;
  elsif b then
    accept m2;
  else
    accept m3;
  end if;
end t;
)",
                                     sink);
  ASSERT_TRUE(program.has_value()) << sink.to_string();
  const Stmt& outer = program->tasks[0].body.at(0);
  ASSERT_EQ(outer.kind, StmtKind::If);
  ASSERT_EQ(outer.orelse.size(), 1u);
  const Stmt& nested = outer.orelse[0];
  EXPECT_EQ(nested.kind, StmtKind::If);
  EXPECT_EQ(nested.body.size(), 1u);
  EXPECT_EQ(nested.orelse.size(), 1u);
}

TEST(Parser, SharedConditionDeclarations) {
  DiagnosticSink sink;
  const auto program = parse_program(
      "shared condition c1, c2;\ntask t is begin null; end t;", sink);
  ASSERT_TRUE(program.has_value()) << sink.to_string();
  ASSERT_EQ(program->shared_conditions.size(), 2u);
  EXPECT_TRUE(program->is_shared_condition(program->shared_conditions[0]));
}

TEST(Parser, SyntaxErrorsReported) {
  DiagnosticSink sink;
  EXPECT_FALSE(parse_program("task is begin end;", sink).has_value());
  EXPECT_TRUE(sink.has_errors());
}

TEST(Parser, MismatchedEndNameReported) {
  DiagnosticSink sink;
  EXPECT_FALSE(
      parse_program("task a is begin null; end b;", sink).has_value());
  EXPECT_TRUE(sink.has_errors());
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  DiagnosticSink sink;
  parse_program(R"(
task t is
begin
  send ;
  accept ;
end t;
)",
                sink);
  EXPECT_GE(sink.error_count(), 2u);
}

TEST(Parser, RecoveryResumesAtNextTaskDeclaration) {
  // A broken first task must not swallow the rest of the file: the parser
  // skips to the next declaration keyword and reports errors from both
  // malformed tasks, with real source locations.
  DiagnosticSink sink;
  parse_program(R"(
task broken is
begin
  send ;
end broken;
task ok is
begin
  accept m;
end ok;
task also_broken is
begin
  accept ;
end also_broken;
)",
                sink);
  EXPECT_GE(sink.error_count(), 2u);
  bool in_first = false;
  bool in_third = false;
  for (const auto& d : sink.diagnostics()) {
    EXPECT_GT(d.loc.line, 0) << d.to_string();
    if (d.loc.line >= 2 && d.loc.line <= 5) in_first = true;
    if (d.loc.line >= 10) in_third = true;
  }
  EXPECT_TRUE(in_first);
  EXPECT_TRUE(in_third);
}

TEST(Parser, ErrorRecoveryCorpusNeverCrashes) {
  // Malformed inputs collected to exercise every synchronize() path: the
  // parser must report at least one located error and return nullopt
  // without crashing.
  const char* corpus[] = {
      "task",
      "task is begin end;",
      "task t is begin",
      "task t is begin send a. end t;",
      "task t is begin if c then end t;",
      "task t is begin while w loop accept m; end t;",
      "task t is begin null; end u;",
      "procedure p is begin send end p;",
      "shared condition ;",
      "begin end",
      "task t is begin accept m end t;",
      "task t is begin send t2.m; end t; task",
      "?? task t is begin null; end t;",
  };
  for (const char* source : corpus) {
    DiagnosticSink sink;
    const auto program = parse_program(source, sink);
    EXPECT_FALSE(program.has_value()) << source;
    EXPECT_TRUE(sink.has_errors()) << source;
    bool located = false;
    for (const auto& d : sink.diagnostics())
      if (d.loc.line > 0) located = true;
    EXPECT_TRUE(located) << "no located diagnostic for: " << source;
  }
}

TEST(Parser, RecoveryStillParsesLaterValidTasksForErrorChecking) {
  // Errors in a later task are found even when an earlier one is broken —
  // proof that recovery re-enters declaration parsing rather than skipping
  // to end-of-file.
  DiagnosticSink sink;
  parse_program(R"(
task broken is
begin
  send ;
end broken;
task late is
begin
  accept m end late;
)",
                sink);
  bool late_error = false;
  for (const auto& d : sink.diagnostics())
    if (d.loc.line >= 6) late_error = true;
  EXPECT_TRUE(late_error) << sink.to_string();
}

TEST(Sema, AcceptsValidProgram) {
  DiagnosticSink sink;
  auto program = parse_program(kFigure1Source, sink);
  ASSERT_TRUE(program.has_value());
  EXPECT_TRUE(check_program(*program, sink));
}

TEST(Sema, RejectsUnknownSendTarget) {
  DiagnosticSink sink;
  auto program =
      parse_program("task t is begin send nobody.m; end t;", sink);
  ASSERT_TRUE(program.has_value());
  EXPECT_FALSE(check_program(*program, sink));
}

TEST(Sema, RejectsDuplicateTaskNames) {
  DiagnosticSink sink;
  auto program = parse_program(
      "task t is begin null; end t;\ntask t is begin null; end t;", sink);
  ASSERT_TRUE(program.has_value());
  EXPECT_FALSE(check_program(*program, sink));
}

TEST(Sema, WarnsOnSelfSend) {
  DiagnosticSink sink;
  auto program = parse_program("task t is begin send t.m; end t;", sink);
  ASSERT_TRUE(program.has_value());
  EXPECT_TRUE(check_program(*program, sink));  // warning, not error
  ASSERT_EQ(sink.diagnostics().size(), 1u);
  EXPECT_EQ(sink.diagnostics()[0].severity, Severity::Warning);
}

TEST(Sema, RejectsEmptyProgram) {
  DiagnosticSink sink;
  auto program = parse_program("", sink);
  ASSERT_TRUE(program.has_value());
  EXPECT_FALSE(check_program(*program, sink));
}

TEST(Printer, RoundTripIsIdempotent) {
  Program p1 = parse_and_check_or_throw(kFigure1Source);
  const std::string printed = print_program(p1);
  Program p2 = parse_and_check_or_throw(printed);
  EXPECT_EQ(printed, print_program(p2));
}

TEST(Printer, RoundTripWithControlFlow) {
  const Program p1 = parse_and_check_or_throw(R"(
shared condition s;
task t is
begin
  if s then
    accept m;
  else
    while c loop
      accept m;
    end loop;
  end if;
end t;
task u is begin send t.m; end u;
)");
  const std::string printed = print_program(p1);
  const Program p2 = parse_and_check_or_throw(printed);
  EXPECT_EQ(printed, print_program(p2));
}

TEST(Ast, MakersSetFields) {
  Program p;
  const Symbol t = p.interner.intern("t");
  const Symbol m = p.interner.intern("m");
  const Symbol c = p.interner.intern("c");
  const Stmt send = make_send(t, m);
  EXPECT_EQ(send.kind, StmtKind::Send);
  EXPECT_TRUE(send.is_rendezvous());
  const Stmt accept = make_accept(m);
  EXPECT_EQ(accept.kind, StmtKind::Accept);
  const Stmt iff = make_if(c, {send}, {accept});
  EXPECT_EQ(iff.body.size(), 1u);
  EXPECT_EQ(iff.orelse.size(), 1u);
  EXPECT_FALSE(iff.is_rendezvous());
  const Stmt wh = make_while(c, {accept});
  EXPECT_EQ(wh.kind, StmtKind::While);
}

TEST(Ast, StatsCountNestingAndRendezvous) {
  const Program p = parse_and_check_or_throw(R"(
task t is
begin
  while a loop
    while b loop
      accept m;
    end loop;
    send u.k;
  end loop;
end t;
task u is begin accept k; send t.m; end u;
)");
  const AstStats stats = compute_stats(p);
  EXPECT_EQ(stats.loops, 2u);
  EXPECT_EQ(stats.max_loop_nesting, 2u);
  EXPECT_EQ(stats.rendezvous_points, 4u);
}

TEST(Parser, ThrowingWrapperThrowsOnBadInput) {
  EXPECT_THROW(parse_and_check_or_throw("task ;"), FrontendError);
  EXPECT_THROW(parse_and_check_or_throw("task t is begin send x.m; end t;"),
               FrontendError);
}

}  // namespace
}  // namespace siwa::lang
