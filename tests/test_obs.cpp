// The observability layer: counter lanes and merged totals, span nesting
// and the tree signature, the null-sink fast path, both exporters and the
// metrics validator, the JSON mini-parser — and the layer's central
// promise, counter/span determinism: the instrumented engines must record
// bit-identical counter totals and span trees at any thread count in
// deterministic mode.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/certifier.h"
#include "gen/patterns.h"
#include "gen/random_program.h"
#include "lang/parser.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "syncgraph/builder.h"
#include "wavesim/explorer.h"
#include "wavesim/shared.h"

namespace siwa::obs {
namespace {

// ----- counters -----

TEST(MetricsSink, CountersSumAcrossLanes) {
  MetricsSink sink(4);
  sink.add("a", 1, 0);
  sink.add("a", 2, 1);
  sink.add("a", 3, 2);
  sink.add("b", 10, 3);
  sink.add("b", 5, 3);
  EXPECT_EQ(sink.total("a"), 6u);
  EXPECT_EQ(sink.total("b"), 15u);
  EXPECT_EQ(sink.total("missing"), 0u);
  const auto totals = sink.counter_totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals.at("a"), 6u);
  EXPECT_EQ(totals.at("b"), 15u);
}

TEST(MetricsSink, LaneIndexReducesModuloShardCount) {
  MetricsSink sink(2);
  sink.add("x", 1, 0);
  sink.add("x", 1, 7);  // lane 7 lands in shard 1
  EXPECT_EQ(sink.total("x"), 2u);
}

TEST(MetricsSink, ConcurrentAddsFromManyThreadsMergeExactly) {
  MetricsSink sink;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&sink, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        sink.add("hits", 1, t);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(sink.total("hits"), kThreads * kPerThread);
}

TEST(SinkRef, NullRefDropsCountersAndSpans) {
  SinkRef null_ref;
  EXPECT_FALSE(null_ref);
  add(null_ref, "dropped", 7);  // must not crash
  Span span(null_ref, "dropped");
  span.arg("k", 1);
}

TEST(SinkRef, CountersOnlyStillCounts) {
  MetricsSink sink;
  SinkRef ref{&sink};
  const SinkRef quiet = ref.counters_only();
  add(quiet, "c", 3);
  { Span span(quiet, "invisible"); }
  EXPECT_EQ(sink.total("c"), 3u);
  EXPECT_TRUE(sink.spans().empty());
}

// ----- spans -----

TEST(Span, NestsOnOneThreadAndRecordsArgs) {
  MetricsSink sink;
  {
    Span outer(&sink, "outer");
    outer.arg("n", 42);
    { Span inner(&sink, "inner"); }
    { Span inner2(&sink, "inner2"); }
  }
  const auto spans = sink.spans();
  ASSERT_EQ(spans.size(), 3u);
  // Records are stored in open order: parents precede children.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, -1);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "n");
  EXPECT_EQ(spans[0].args[0].second, 42u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].name, "inner2");
  EXPECT_EQ(spans[2].parent, 0);
}

TEST(Span, SpansOnAnotherThreadDoNotInheritThisThreadsParent) {
  MetricsSink sink;
  {
    Span outer(&sink, "outer");
    std::thread([&sink] { Span other(&sink, "other"); }).join();
  }
  const auto spans = sink.spans();
  ASSERT_EQ(spans.size(), 2u);
  for (const auto& s : spans)
    EXPECT_EQ(s.parent, -1) << s.name;
}

TEST(Span, OpenSpansAreExcludedFromSnapshots) {
  MetricsSink sink;
  Span open(&sink, "still-open");
  EXPECT_TRUE(sink.spans().empty());
}

TEST(Span, SignatureShowsShapeAndArgsWithoutTimings) {
  MetricsSink sink;
  {
    Span outer(&sink, "phase");
    outer.arg("items", 3);
    { Span inner(&sink, "step"); }
  }
  EXPECT_EQ(span_tree_signature(sink), "phase{items=3}\n  step\n");
}

// The contract the bench guard enforces at ~100 ns; the unit-test bound is
// deliberately loose (sanitizers, debug builds) but still catches a lock
// or allocation sneaking onto the null path.
TEST(Span, NullSinkPathStaysCheap) {
  constexpr std::size_t kIters = 200'000;
  MetricsSink* null_sink = nullptr;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kIters; ++i) {
    Span span(null_sink, "guard");
  }
  const double ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start)
          .count() /
      static_cast<double>(kIters);
  EXPECT_LT(ns, 2000.0);
}

// ----- exporters and validator -----

TEST(Export, TraceEventJsonRoundTripsThroughTheParser) {
  MetricsSink sink;
  {
    Span outer(&sink, "load \"x\"");  // name needing escapes
    { Span inner(&sink, "parse"); }
  }
  const auto doc = json::parse(to_trace_event_json(sink, "test-proc"));
  ASSERT_TRUE(doc.has_value());
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Metadata event + two phase events.
  ASSERT_EQ(events->as_array().size(), 3u);
  const json::Value& meta = events->as_array()[0];
  ASSERT_NE(meta.find("ph"), nullptr);
  EXPECT_EQ(meta.find("ph")->as_string(), "M");
  const json::Value& first = events->as_array()[1];
  EXPECT_EQ(first.find("ph")->as_string(), "X");
  EXPECT_EQ(first.find("name")->as_string(), "load \"x\"");
  EXPECT_TRUE(first.find("dur")->is_number());
}

TEST(Export, MetricsJsonRoundTripsAndValidates) {
  MetricsSink sink;
  {
    Span outer(&sink, "phase");
    outer.arg("n", 2);
    { Span inner(&sink, "step"); }
  }
  sink.add("widgets", 11);
  const std::string text =
      to_metrics_json(sink, "test-tool", sink.now_us(),
                      /*include_process_counters=*/false);
  EXPECT_EQ(validate_metrics_json(text), std::nullopt);

  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->as_string(), "siwa-metrics/1");
  EXPECT_EQ(doc->find("tool")->as_string(), "test-tool");
  const json::Value* spans = doc->find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->as_array().size(), 2u);
  EXPECT_EQ(spans->as_array()[0].find("name")->as_string(), "phase");
  EXPECT_EQ(spans->as_array()[1].find("parent")->as_number(), 0.0);
  const json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("widgets")->as_number(), 11.0);
}

TEST(Export, ValidatorRejectsMalformedDocuments) {
  // Not JSON at all.
  EXPECT_TRUE(validate_metrics_json("{nope").has_value());
  // Wrong schema tag.
  EXPECT_TRUE(validate_metrics_json(
                  R"({"schema":"other/1","tool":"t","wall_us":1,)"
                  R"("spans":[],"counters":{}})")
                  .has_value());
  // Missing counters object.
  EXPECT_TRUE(validate_metrics_json(
                  R"({"schema":"siwa-metrics/1","tool":"t","wall_us":1,)"
                  R"("spans":[]})")
                  .has_value());
  // Span parent pointing forward (child before parent).
  EXPECT_TRUE(
      validate_metrics_json(
          R"({"schema":"siwa-metrics/1","tool":"t","wall_us":1,"spans":[)"
          R"({"name":"a","parent":1,"start_us":0,"dur_us":1,"args":{}},)"
          R"({"name":"b","parent":-1,"start_us":0,"dur_us":1,"args":{}}],)"
          R"("counters":{}})")
          .has_value());
  // Negative duration.
  EXPECT_TRUE(
      validate_metrics_json(
          R"({"schema":"siwa-metrics/1","tool":"t","wall_us":1,"spans":[)"
          R"({"name":"a","parent":-1,"start_us":0,"dur_us":-5,"args":{}}],)"
          R"("counters":{}})")
          .has_value());
}

TEST(Export, ValidatorEnforcesCoverageWhenAsked) {
  // Root spans cover 50 of 100 µs: fails a 10% requirement, passes 60%.
  const std::string text =
      R"({"schema":"siwa-metrics/1","tool":"t","wall_us":100,"spans":[)"
      R"({"name":"a","parent":-1,"start_us":0,"dur_us":30,"args":{}},)"
      R"({"name":"b","parent":0,"start_us":0,"dur_us":29,"args":{}},)"
      R"({"name":"c","parent":-1,"start_us":30,"dur_us":20,"args":{}}],)"
      R"("counters":{}})";
  EXPECT_EQ(validate_metrics_json(text), std::nullopt);
  EXPECT_TRUE(validate_metrics_json(text, 10.0).has_value());
  EXPECT_EQ(validate_metrics_json(text, 60.0), std::nullopt);
}

// ----- the JSON mini-parser -----

TEST(Json, ParsesScalarsArraysObjects) {
  const auto doc = json::parse(
      R"({"s":"a\"bA","n":-1.5e2,"t":true,"f":false,"z":null,)"
      R"("arr":[1,2,3]})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("s")->as_string(), "a\"bA");
  EXPECT_EQ(doc->find("n")->as_number(), -150.0);
  EXPECT_TRUE(doc->find("t")->as_bool());
  EXPECT_FALSE(doc->find("f")->as_bool());
  EXPECT_TRUE(doc->find("z")->is_null());
  ASSERT_EQ(doc->find("arr")->as_array().size(), 3u);
  EXPECT_EQ(doc->find("arr")->as_array()[2].as_number(), 3.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(json::parse("").has_value());
  EXPECT_FALSE(json::parse("{").has_value());
  EXPECT_FALSE(json::parse("[1,]").has_value());
  EXPECT_FALSE(json::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(json::parse("01a").has_value());
  EXPECT_FALSE(json::parse("\"unterminated").has_value());
  EXPECT_FALSE(json::parse("1 2").has_value());  // trailing garbage
  EXPECT_FALSE(json::parse("nul").has_value());
}

TEST(Json, EscapeCoversQuotesBackslashesAndControls) {
  EXPECT_EQ(json::escape("a\"b\\c\n\t\x01"), "a\\\"b\\\\c\\n\\t\\u0001");
}

// ----- engine determinism across thread counts -----

sg::SyncGraph graph_of(const char* source) {
  return sg::build_sync_graph(lang::parse_and_check_or_throw(source));
}

// Instrumented deterministic exploration must record the same counters and
// the same span tree at every thread count: spans only come from the
// coordinating thread and per-level counter deltas are fixed by the
// level-synchronous schedule.
TEST(Determinism, ExplorerCountersAndSpansMatchSerialAtAnyThreadCount) {
  const sg::SyncGraph graph =
      sg::build_sync_graph(gen::dining_philosophers(4, /*left_first=*/true));

  std::map<std::string, std::uint64_t> expected_counters;
  std::string expected_signature;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    MetricsSink sink;
    wavesim::ExploreOptions options;
    options.threads = threads;
    options.metrics = SinkRef{&sink};
    const auto result = wavesim::WaveExplorer(graph, options).explore();
    EXPECT_TRUE(result.complete);
    const auto counters = sink.counter_totals();
    const std::string signature = span_tree_signature(sink);
    EXPECT_GT(counters.at("wavesim.visited"), 0u);
    if (threads == 1) {
      expected_counters = counters;
      expected_signature = signature;
    } else {
      EXPECT_EQ(counters, expected_counters) << "threads=" << threads;
      EXPECT_EQ(signature, expected_signature) << "threads=" << threads;
    }
  }
}

TEST(Determinism, ExploreSharedCountersAndSpansMatchSerial) {
  gen::RandomProgramConfig config;
  config.tasks = 3;
  config.rendezvous_pairs = 6;
  config.branch_probability = 0.4;
  config.shared_conditions = 3;
  config.shared_condition_probability = 0.8;
  config.seed = 11;
  const lang::Program program = gen::random_program(config);

  std::map<std::string, std::uint64_t> expected_counters;
  std::string expected_signature;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    MetricsSink sink;
    wavesim::ExploreOptions options;
    options.threads = threads;
    options.metrics = SinkRef{&sink};
    const auto result = wavesim::explore_shared(program, options);
    EXPECT_GE(result.assignments_total, 1u);
    const auto counters = sink.counter_totals();
    const std::string signature = span_tree_signature(sink);
    if (threads == 1) {
      expected_counters = counters;
      expected_signature = signature;
    } else {
      EXPECT_EQ(counters, expected_counters) << "threads=" << threads;
      EXPECT_EQ(signature, expected_signature) << "threads=" << threads;
    }
  }
}

TEST(Determinism, CertifyBatchCountersAndSpansMatchSerial) {
  std::vector<sg::SyncGraph> corpus;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    gen::RandomProgramConfig config;
    config.tasks = 3;
    config.rendezvous_pairs = 5;
    config.branch_probability = 0.3;
    config.seed = seed;
    corpus.push_back(sg::build_sync_graph(gen::random_program(config)));
  }

  std::map<std::string, std::uint64_t> expected_counters;
  std::string expected_signature;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    MetricsSink sink;
    core::CertifyOptions options;
    options.algorithm = core::Algorithm::RefinedHeadPair;
    options.parallel.threads = threads;
    options.metrics = SinkRef{&sink};
    const auto results = core::certify_batch(corpus, options);
    EXPECT_EQ(results.size(), corpus.size());
    const auto counters = sink.counter_totals();
    const std::string signature = span_tree_signature(sink);
    EXPECT_EQ(counters.at("certify.graphs"), corpus.size());
    if (threads == 1) {
      expected_counters = counters;
      expected_signature = signature;
    } else {
      EXPECT_EQ(counters, expected_counters) << "threads=" << threads;
      EXPECT_EQ(signature, expected_signature) << "threads=" << threads;
    }
  }
}

// Capping the explorer surfaces as a wavesim.cap.* counter.
TEST(Determinism, CapCounterNamesTheFirstCapHit) {
  const auto g = graph_of(R"(
task a is begin send b.m; send b.m; end a;
task b is begin accept m; accept m; end b;
)");
  MetricsSink sink;
  wavesim::ExploreOptions options;
  options.max_states = 1;
  options.metrics = SinkRef{&sink};
  const auto result = wavesim::WaveExplorer(g, options).explore();
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(sink.total("wavesim.cap.states"), 1u);
}

}  // namespace
}  // namespace siwa::obs
