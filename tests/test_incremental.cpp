// The incremental analysis engine's property suite.
//
// The identity contract behind LintCache and siwa_lintd is that a context
// repaired by AnalysisContext::refresh answers every query bit-identically
// to a context built fresh over the edited graph. This file enforces that
// contract the hard way: random edit scripts (control-edge removal and
// restoration, guard rewrites) over seeded random graphs, comparing the
// incrementally maintained context against a fresh one after every step —
// all-pairs reachability, dominator trees, the guard dataflow's full
// per-(node, condition) lattice, and the certify verdict at 1/2/4/8
// hypothesis-sweep threads. Plus targeted edits for each invalidation
// path: empty/cancelled windows, structural growth, loop-condition
// changes, the diff_graphs rebuild path, and the LintCache memo keys.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/analysis_context.h"
#include "core/certifier.h"
#include "gen/random_program.h"
#include "lang/parser.h"
#include "lint/cache.h"
#include "syncgraph/builder.h"
#include "syncgraph/graph_edits.h"
#include "syncgraph/sync_graph.h"

namespace siwa {
namespace {

sg::SyncGraph graph_of(const char* source) {
  return sg::build_sync_graph(lang::parse_and_check_or_throw(source));
}

sg::SyncGraph seeded_graph(std::uint64_t seed) {
  gen::RandomProgramConfig config;
  config.tasks = 3;
  config.rendezvous_pairs = 6;
  config.branch_probability = 0.35;
  config.shared_conditions = 2;
  config.shared_condition_probability = 1.0;
  config.seed = seed;
  return sg::build_sync_graph(gen::random_program(config));
}

std::vector<std::pair<NodeId, NodeId>> control_edges(const sg::SyncGraph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::size_t i = 0; i < g.node_count(); ++i)
    for (NodeId to : g.control_successors(NodeId(i)))
      edges.emplace_back(NodeId(i), to);
  return edges;
}

// Every shared condition the graph mentions (guards plus loop pins) — the
// vocabulary the random guard rewrites draw from.
std::vector<Symbol> guard_conditions(const sg::SyncGraph& g) {
  std::vector<Symbol> conds;
  for (std::size_t i = 0; i < g.node_count(); ++i)
    for (const sg::Guard& guard : g.node(NodeId(i)).guards)
      conds.push_back(guard.cond);
  for (Symbol c : g.loop_conditions()) conds.push_back(c);
  std::sort(conds.begin(), conds.end());
  conds.erase(std::unique(conds.begin(), conds.end()), conds.end());
  return conds;
}

// Builds every lazy product so a later refresh exercises the repair paths
// rather than first-time construction.
void warm(const core::AnalysisContext& ctx) {
  (void)ctx.clg();
  (void)ctx.dominators();
  (void)ctx.guard_feasibility();
}

// The bit-identity check: every query the detectors and lint rules consume
// must agree between the incrementally maintained context and a fresh one.
void expect_equivalent(const core::AnalysisContext& inc,
                       const core::AnalysisContext& fresh,
                       const std::string& what) {
  ASSERT_EQ(&inc.graph(), &fresh.graph()) << what;
  const std::size_t n = fresh.graph().node_count();
  EXPECT_EQ(inc.control_acyclic(), fresh.control_acyclic()) << what;

  std::size_t reach_mismatches = 0;
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      if (inc.reaches(NodeId(a), NodeId(b)) !=
          fresh.reaches(NodeId(a), NodeId(b)))
        ++reach_mismatches;
  EXPECT_EQ(reach_mismatches, 0u) << what << ": closure diverged";

  const graph::Dominators& di = inc.dominators();
  const graph::Dominators& df = fresh.dominators();
  for (std::size_t v = 0; v < n; ++v)
    EXPECT_EQ(di.idom(VertexId(v)), df.idom(VertexId(v)))
        << what << ": idom of node " << v;

  const dataflow::GuardFeasibility& fi = inc.guard_feasibility();
  const dataflow::GuardFeasibility& ff = fresh.guard_feasibility();
  ASSERT_EQ(std::vector<Symbol>(fi.conditions().begin(),
                                fi.conditions().end()),
            std::vector<Symbol>(ff.conditions().begin(),
                                ff.conditions().end()))
      << what;
  EXPECT_EQ(fi.infeasible_count(), ff.infeasible_count()) << what;
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId node(v);
    EXPECT_EQ(fi.feasible(node), ff.feasible(node))
        << what << ": feasible(" << v << ")";
    EXPECT_EQ(fi.constrained(node), ff.constrained(node))
        << what << ": constrained(" << v << ")";
    for (Symbol c : ff.conditions())
      EXPECT_EQ(fi.value(node, c), ff.value(node, c))
          << what << ": value(" << v << ")";
  }
}

// The end-to-end identity: the certify verdict, witness and dataflow facts
// must match at every hypothesis-sweep width (the parallel merge is
// deterministic, so fresh-vs-refreshed differences cannot hide behind
// thread scheduling).
void expect_same_certify(const core::AnalysisContext& inc,
                         const core::AnalysisContext& fresh,
                         const std::string& what) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::CertifyOptions options;
    options.use_guard_dataflow = true;
    options.parallel.threads = threads;
    const core::CertifyResult a = core::certify_graph(inc, options);
    const core::CertifyResult b = core::certify_graph(fresh, options);
    const std::string where = what + " @" + std::to_string(threads) + "t";
    EXPECT_EQ(a.certified_free, b.certified_free) << where;
    EXPECT_EQ(a.witness, b.witness) << where;
    EXPECT_EQ(a.witness_nodes, b.witness_nodes) << where;
    EXPECT_EQ(a.infeasibility_facts, b.infeasibility_facts) << where;
  }
}

// ----- the property: random edit scripts -----

TEST(IncrementalProperty, RandomEditScriptsMatchFreshContexts) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sg::SyncGraph g = seeded_graph(seed);
    core::AnalysisContext ctx(g);
    warm(ctx);
    const std::vector<Symbol> conds = guard_conditions(g);

    std::mt19937_64 rng(seed * 977);
    // Edges removed earlier and not yet restored; restoring only edges the
    // original acyclic graph held keeps every step certifiable.
    std::vector<std::pair<NodeId, NodeId>> removed;

    for (int step = 0; step < 8; ++step) {
      g.begin_edits();
      const int ops = 1 + static_cast<int>(rng() % 3);
      for (int k = 0; k < ops; ++k) {
        switch (rng() % 3) {
          case 0: {  // drop a random control edge
            const auto edges = control_edges(g);
            if (edges.empty()) break;
            const auto e = edges[rng() % edges.size()];
            g.remove_control_edge(e.first, e.second);
            removed.push_back(e);
            break;
          }
          case 1: {  // restore a previously dropped edge
            if (removed.empty()) break;
            const std::size_t i = rng() % removed.size();
            g.add_control_edge(removed[i].first, removed[i].second);
            removed.erase(removed.begin() +
                          static_cast<std::ptrdiff_t>(i));
            break;
          }
          default: {  // rewrite a rendezvous node's guard set
            if (conds.empty() || g.node_count() <= 2) break;
            const NodeId node(2 + rng() % (g.node_count() - 2));
            if (!g.is_rendezvous(node)) break;
            std::vector<sg::Guard> guards;
            for (Symbol c : conds)
              if (rng() % 2 != 0) guards.push_back({c, rng() % 2 == 0});
            g.set_node_guards(node, std::move(guards));
            break;
          }
        }
      }
      const sg::GraphEdits edits = g.refinalize();

      const std::uint64_t revision = ctx.revision();
      const bool changed = ctx.refresh(g, edits);
      EXPECT_EQ(changed, !edits.empty());
      EXPECT_EQ(ctx.revision(), revision + (changed ? 1 : 0));

      const std::string what =
          "seed " + std::to_string(seed) + " step " + std::to_string(step);
      core::AnalysisContext fresh(g);
      expect_equivalent(ctx, fresh, what);
      if (fresh.control_acyclic()) expect_same_certify(ctx, fresh, what);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// The rebuild-and-diff path siwa_lintd takes: the context was built over
// the *previous* graph object, the frontend builds a fresh graph from the
// edited source, and diff_graphs recovers the edit log.
TEST(IncrementalProperty, DiffGraphsPathMatchesFreshContexts) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    const sg::SyncGraph before = seeded_graph(seed);
    core::AnalysisContext ctx(before);
    warm(ctx);

    sg::SyncGraph after = seeded_graph(seed);  // same shape, then edited
    std::mt19937_64 rng(seed);
    after.begin_edits();
    const auto edges = control_edges(after);
    ASSERT_FALSE(edges.empty());
    const auto dropped = edges[rng() % edges.size()];
    after.remove_control_edge(dropped.first, dropped.second);
    const std::vector<Symbol> conds = guard_conditions(after);
    if (!conds.empty() && after.node_count() > 2) {
      const NodeId node(2);
      if (after.is_rendezvous(node))
        after.set_node_guards(node, {{conds.front(), false}});
    }
    (void)after.refinalize();

    const std::optional<sg::GraphEdits> diff = sg::diff_graphs(before, after);
    ASSERT_TRUE(diff.has_value()) << "seed " << seed;
    EXPECT_FALSE(diff->empty()) << "seed " << seed;
    EXPECT_TRUE(ctx.refresh(after, *diff));

    const std::string what = "diff seed " + std::to_string(seed);
    core::AnalysisContext fresh(after);
    expect_equivalent(ctx, fresh, what);
    if (fresh.control_acyclic()) expect_same_certify(ctx, fresh, what);
  }
}

// ----- targeted invalidation paths -----

TEST(Incremental, EmptyEditWindowIsANoOpRefresh) {
  sg::SyncGraph g = graph_of(R"(
task a is begin send b.ping; end a;
task b is begin accept ping; end b;
)");
  core::AnalysisContext ctx(g);
  warm(ctx);
  const std::uint64_t revision = ctx.revision();

  g.begin_edits();
  const sg::GraphEdits edits = g.refinalize();
  EXPECT_TRUE(edits.empty());
  EXPECT_FALSE(ctx.refresh(g, edits));
  EXPECT_EQ(ctx.revision(), revision);
  EXPECT_FALSE(ctx.last_refresh().refreshed);
}

TEST(Incremental, CancelledEditsNormalizeToNoOp) {
  sg::SyncGraph g = graph_of(R"(
task a is begin send b.ping; send b.pong; end a;
task b is begin accept ping; accept pong; end b;
)");
  core::AnalysisContext ctx(g);
  const std::uint64_t revision = ctx.revision();

  // Drop an edge and put it straight back: the normalized log must cancel
  // the pair, so the refresh only rebinds.
  const auto edges = control_edges(g);
  ASSERT_FALSE(edges.empty());
  g.begin_edits();
  g.remove_control_edge(edges[0].first, edges[0].second);
  g.add_control_edge(edges[0].first, edges[0].second);
  const sg::GraphEdits edits = g.refinalize();
  EXPECT_TRUE(edits.empty());
  EXPECT_FALSE(ctx.refresh(g, edits));
  EXPECT_EQ(ctx.revision(), revision);
}

TEST(Incremental, StructuralGrowthFallsBackToFullRebuild) {
  sg::SyncGraph g = graph_of(R"(
task a is begin send b.ping; end a;
task b is begin accept ping; end b;
)");
  core::AnalysisContext ctx(g);
  warm(ctx);

  // Append a fresh accept to task b, wired after its existing node.
  TaskId b;
  for (std::size_t t = 0; t < g.task_count(); ++t)
    if (g.task_name(TaskId(t)) == "b") b = TaskId(t);
  ASSERT_TRUE(b.valid());
  const NodeId tail = g.nodes_of_task(b).back();

  g.begin_edits();
  const SignalId late = g.intern_signal(b, g.intern_message("late"));
  const NodeId grown = g.add_rendezvous(b, late, sg::Sign::Minus);
  g.add_control_edge(tail, grown);
  g.add_control_edge(grown, g.end_node());
  const sg::GraphEdits edits = g.refinalize();

  EXPECT_TRUE(edits.structural());
  EXPECT_TRUE(ctx.refresh(g, edits));
  EXPECT_TRUE(ctx.last_refresh().full_rebuild);

  core::AnalysisContext fresh(g);
  expect_equivalent(ctx, fresh, "structural growth");
  if (fresh.control_acyclic())
    expect_same_certify(ctx, fresh, "structural growth");
}

TEST(Incremental, LoopConditionRemovalRebuildsTheDataflow) {
  // `w` pins to false at b (all tasks terminate), so the loop body is
  // statically dead; dropping the pin revives it.
  sg::SyncGraph g = graph_of(R"(
shared condition w;
task t is
begin
  while w loop
    accept inside;
  end loop;
  accept after;
end t;
task u is begin send t.inside; send t.after; end u;
)");
  ASSERT_EQ(g.loop_conditions().size(), 1u);
  const Symbol w = g.loop_conditions()[0];
  core::AnalysisContext ctx(g);
  warm(ctx);

  NodeId inside = NodeId::invalid();
  for (std::size_t v = 2; v < g.node_count(); ++v)
    if (g.task_name(g.task_of(NodeId(v))) == "t" &&
        g.node(NodeId(v)).sign == sg::Sign::Minus &&
        g.message_name(g.signal_type(g.signal_of(NodeId(v))).message) ==
            "inside")
      inside = NodeId(v);
  ASSERT_TRUE(inside.valid());
  EXPECT_FALSE(ctx.guard_feasibility().feasible(inside));

  g.begin_edits();
  g.remove_loop_condition(w);
  const sg::GraphEdits edits = g.refinalize();
  EXPECT_TRUE(edits.loop_conditions_changed);
  EXPECT_TRUE(ctx.refresh(g, edits));
  EXPECT_TRUE(ctx.last_refresh().feasibility_rebuilt);

  EXPECT_TRUE(ctx.guard_feasibility().feasible(inside));
  expect_equivalent(ctx, core::AnalysisContext(g), "loop-condition removal");
}

TEST(Incremental, DiffRejectsStructurallyDifferentGraphs) {
  const sg::SyncGraph a = graph_of(R"(
task a is begin send b.ping; end a;
task b is begin accept ping; end b;
)");
  const sg::SyncGraph b = graph_of(R"(
task a is begin send b.ping; send b.pong; end a;
task b is begin accept ping; accept pong; end b;
)");
  EXPECT_FALSE(sg::diff_graphs(a, b).has_value());
  EXPECT_TRUE(sg::diff_graphs(a, a).has_value());
  EXPECT_TRUE(sg::diff_graphs(a, a)->empty());
}

// ----- LintCache: the memo keys above the refresh machinery -----

TEST(LintCacheTest, EquivalentRebuildRefreshesInsteadOfRebuilding) {
  const char* source = R"(
task a is begin send b.ping; end a;
task b is begin accept ping; end b;
)";
  lint::LintCache cache;
  core::AnalysisContext& first =
      cache.acquire("structural", std::make_unique<sg::SyncGraph>(
                                      graph_of(source)));
  EXPECT_EQ(cache.stats().context_rebuilds, 1u);
  EXPECT_EQ(cache.stats().context_reuses, 0u);

  // Same source re-built from scratch: the diff engages (empty log) and
  // the cached context survives, merely rebound to the new graph object.
  core::AnalysisContext& second =
      cache.acquire("structural", std::make_unique<sg::SyncGraph>(
                                      graph_of(source)));
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(cache.stats().context_reuses, 1u);
  EXPECT_EQ(cache.stats().context_rebuilds, 1u);

  // A structurally different program cannot be diffed: rebuild.
  cache.acquire("structural", std::make_unique<sg::SyncGraph>(graph_of(R"(
task a is begin send b.ping; send b.pong; end a;
task b is begin accept ping; accept pong; end b;
)")));
  EXPECT_EQ(cache.stats().context_rebuilds, 2u);
}

TEST(LintCacheTest, CertifyMemoKeysOnOptionsAndRevision) {
  lint::LintCache cache;
  core::AnalysisContext& ctx =
      cache.acquire("structural", std::make_unique<sg::SyncGraph>(graph_of(R"(
task a is begin send b.ping; accept pong; end a;
task b is begin accept ping; send a.pong; end b;
)")));

  core::CertifyOptions options;
  options.use_guard_dataflow = true;
  const core::CertifyResult cold = cache.certify("structural", ctx, options);
  EXPECT_EQ(cache.stats().certify_misses, 1u);
  const core::CertifyResult memo = cache.certify("structural", ctx, options);
  EXPECT_EQ(cache.stats().certify_hits, 1u);
  EXPECT_EQ(cold.certified_free, memo.certified_free);
  EXPECT_EQ(cold.witness, memo.witness);

  // A different fingerprint misses even at the same revision.
  options.parallel.threads = 2;
  (void)cache.certify("structural", ctx, options);
  EXPECT_EQ(cache.stats().certify_misses, 2u);

  // A foreign context (not the slot's) is never memoized.
  const sg::SyncGraph other = graph_of(R"(
task a is begin send b.ping; end a;
task b is begin accept ping; end b;
)");
  const core::AnalysisContext foreign(other);
  (void)cache.certify("structural", foreign, options);
  (void)cache.certify("structural", foreign, options);
  EXPECT_EQ(cache.stats().certify_hits, 1u);
}

TEST(LintCacheTest, GuardEditBumpsRevisionAndInvalidatesMemo) {
  // A real graph edit must invalidate the memo via the revision key, and
  // the re-certified verdict must match a cold certify of the new graph.
  const char* v0 = R"(
shared condition c;
task a is
begin
  if c then
    send b.ping;
  end if;
  accept pong;
end a;
task b is begin accept ping; send a.pong; end b;
)";
  // Same node array, but the send now sits in the complement arm (the
  // docstring statement produces no sync node).
  const char* v1 = R"(
shared condition c;
task a is
begin
  if c then
    "ping disabled while c holds";
  else
    send b.ping;
  end if;
  accept pong;
end a;
task b is begin accept ping; send a.pong; end b;
)";
  lint::LintCache cache;
  core::CertifyOptions options;
  options.use_guard_dataflow = true;

  core::AnalysisContext& ctx = cache.acquire(
      "structural", std::make_unique<sg::SyncGraph>(graph_of(v0)));
  const std::uint64_t revision = ctx.revision();
  (void)cache.certify("structural", ctx, options);

  core::AnalysisContext& refreshed = cache.acquire(
      "structural", std::make_unique<sg::SyncGraph>(graph_of(v1)));
  ASSERT_EQ(&ctx, &refreshed);
  EXPECT_EQ(cache.stats().context_reuses, 1u);
  EXPECT_GT(refreshed.revision(), revision);

  const core::CertifyResult warm =
      cache.certify("structural", refreshed, options);
  EXPECT_EQ(cache.stats().certify_misses, 2u);
  const core::CertifyResult cold =
      core::certify_graph(core::AnalysisContext(refreshed.graph()), options);
  EXPECT_EQ(warm.certified_free, cold.certified_free);
  EXPECT_EQ(warm.witness, cold.witness);
}

}  // namespace
}  // namespace siwa
