// Shared AnalysisContext: the one-closure-per-certification contract
// (pinned with the graph::closure_constructions counter), context-vs-legacy
// result equivalence, the CoExec guard-loop regression, and the
// coaccept-bitset enumeration against a reference linear-scan
// implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/analysis_context.h"
#include "core/certifier.h"
#include "core/coexec.h"
#include "core/precedence.h"
#include "core/refined_detector.h"
#include "gen/random_program.h"
#include "graph/reachability.h"
#include "lang/parser.h"
#include "syncgraph/builder.h"
#include "syncgraph/clg.h"

namespace siwa::core {
namespace {

sg::SyncGraph graph_of(const char* source) {
  return sg::build_sync_graph(lang::parse_and_check_or_throw(source));
}

std::vector<sg::SyncGraph> seeded_graphs() {
  std::vector<sg::SyncGraph> out;
  const double branch[] = {0.0, 0.35};
  for (double b : branch) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      gen::RandomProgramConfig config;
      config.tasks = 3;
      config.rendezvous_pairs = 5;
      config.branch_probability = b;
      config.seed = seed;
      out.push_back(sg::build_sync_graph(gen::random_program(config)));
    }
  }
  return out;
}

const Algorithm kRefinedAlgorithms[] = {
    Algorithm::RefinedSingle, Algorithm::RefinedHeadPair,
    Algorithm::RefinedHeadTail, Algorithm::RefinedHeadTailPairs};

const HypothesisMode kAllModes[] = {
    HypothesisMode::SingleHead, HypothesisMode::HeadPair,
    HypothesisMode::HeadTail, HypothesisMode::HeadTailPairs};

using HypKey = std::tuple<std::int32_t, std::int32_t, std::int32_t,
                          std::int32_t>;

std::vector<HypKey> keys_of(const std::vector<Hypothesis>& hyps) {
  std::vector<HypKey> keys;
  keys.reserve(hyps.size());
  for (const Hypothesis& h : hyps)
    keys.emplace_back(h.head1.value, h.tail1.value, h.head2.value,
                      h.tail2.value);
  return keys;
}

void expect_same_result(const CertifyResult& expected,
                        const CertifyResult& got, const char* what) {
  EXPECT_EQ(expected.certified_free, got.certified_free) << what;
  EXPECT_EQ(expected.witness, got.witness) << what;
  EXPECT_EQ(expected.witness_nodes, got.witness_nodes) << what;
  EXPECT_EQ(expected.stats.hypotheses_tested, got.stats.hypotheses_tested)
      << what;
  EXPECT_EQ(expected.stats.possible_heads, got.stats.possible_heads) << what;
}

// ----- the one-closure contract -----

TEST(ClosureCount, ExactlyOnePerRefinedCertify) {
  const sg::SyncGraph g = graph_of(R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)");
  for (Algorithm algorithm : kRefinedAlgorithms) {
    for (bool c4 : {false, true}) {
      CertifyOptions options;
      options.algorithm = algorithm;
      options.apply_constraint4 = c4;
      const std::size_t before = graph::closure_constructions();
      (void)certify_graph(g, options);
      EXPECT_EQ(graph::closure_constructions() - before, 1u)
          << algorithm_name(algorithm) << " c4=" << c4;
    }
  }
}

TEST(ClosureCount, NaiveCertifyBuildsNoClosure) {
  const sg::SyncGraph g = graph_of(R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)");
  CertifyOptions options;
  options.algorithm = Algorithm::Naive;
  const std::size_t before = graph::closure_constructions();
  (void)certify_graph(g, options);
  EXPECT_EQ(graph::closure_constructions() - before, 0u);
}

TEST(ClosureCount, CallerContextIsReusedAcrossCertifications) {
  const sg::SyncGraph g = graph_of(R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)");
  const AnalysisContext ctx(g);
  const std::size_t before = graph::closure_constructions();
  for (Algorithm algorithm : kRefinedAlgorithms) {
    CertifyOptions options;
    options.algorithm = algorithm;
    (void)certify_graph(ctx, options);
  }
  EXPECT_EQ(graph::closure_constructions() - before, 0u);
}

TEST(ClosureCount, BatchBuildsExactlyOneClosurePerGraph) {
  std::vector<sg::SyncGraph> graphs = seeded_graphs();
  graphs.resize(12);
  CertifyOptions options;
  options.algorithm = Algorithm::RefinedHeadTail;
  options.apply_constraint4 = true;
  for (std::size_t threads : {1, 4}) {
    options.parallel.threads = threads;
    const std::size_t before = graph::closure_constructions();
    (void)certify_batch(graphs, options);
    EXPECT_EQ(graph::closure_constructions() - before, graphs.size())
        << "threads=" << threads;
  }
}

// ----- context vs legacy equivalence -----

TEST(ContextEquivalence, CertifyVerdictsMatchLegacyAcrossCorpus) {
  for (const sg::SyncGraph& g : seeded_graphs()) {
    const AnalysisContext ctx(g);
    for (Algorithm algorithm : kRefinedAlgorithms) {
      CertifyOptions options;
      options.algorithm = algorithm;
      expect_same_result(certify_graph(g, options), certify_graph(ctx, options),
                         algorithm_name(algorithm).c_str());
    }
  }
}

TEST(ContextEquivalence, EnumerationMatchesLegacyInEveryMode) {
  for (const sg::SyncGraph& g : seeded_graphs()) {
    const AnalysisContext ctx(g);
    const Precedence precedence(ctx);
    const CoExec coexec(ctx);
    for (HypothesisMode mode : kAllModes) {
      for (bool c4 : {false, true}) {
        RefinedOptions options;
        options.mode = mode;
        options.apply_constraint4 = c4;
        std::size_t legacy_heads = 0;
        std::size_t ctx_heads = 0;
        const auto legacy = enumerate_hypotheses(g, precedence, coexec,
                                                 options, &legacy_heads);
        const auto with_ctx = enumerate_hypotheses(ctx, precedence, coexec,
                                                   options, &ctx_heads);
        EXPECT_EQ(keys_of(legacy), keys_of(with_ctx));
        EXPECT_EQ(legacy_heads, ctx_heads);
      }
    }
  }
}

TEST(ContextEquivalence, SharedAnalysesMatchStandaloneConstruction) {
  for (const sg::SyncGraph& g : seeded_graphs()) {
    const AnalysisContext ctx(g);
    const Precedence from_ctx(ctx);
    const Precedence from_graph(g);
    EXPECT_EQ(from_ctx.strong_pair_count(), from_graph.strong_pair_count());
    EXPECT_EQ(from_ctx.excluded_pair_count(),
              from_graph.excluded_pair_count());
    const CoExec coexec_ctx(ctx);
    const CoExec coexec_graph(g);
    for (std::size_t a = 2; a < g.node_count(); ++a)
      for (std::size_t b = 2; b < g.node_count(); ++b)
        EXPECT_EQ(coexec_ctx.coexecutable(NodeId(a), NodeId(b)),
                  coexec_graph.coexecutable(NodeId(a), NodeId(b)));
  }
}

// ----- CoExec guard loop regression -----

// The guard-conflict loop used to start at node index 2, silently assuming
// the first guard-carrying nodes can never be lower-numbered. It now scans
// from 0; conflicting guards on the lowest-numbered rendezvous nodes (the
// first nodes after b/e) must be detected.
TEST(CoExecGuards, ConflictOnLowestNumberedNodesIsDetected) {
  const sg::SyncGraph g = graph_of(R"(
shared condition v;
task t is begin if v then accept m1; end if; end t;
task u is begin if v then null; else send t.m1; end if; end u;
)");
  // The accept is the very first node after b/e.
  const NodeId accept_m1 = g.nodes_of_task(TaskId(0))[0];
  const NodeId send_m1 = g.nodes_of_task(TaskId(1))[0];
  ASSERT_EQ(accept_m1.value, 2);
  ASSERT_FALSE(g.node(accept_m1).guards.empty());
  ASSERT_TRUE(g.guards_conflict(accept_m1, send_m1));
  const CoExec coexec(g);
  EXPECT_FALSE(coexec.coexecutable(accept_m1, send_m1));
}

// ----- coaccept bitset vs reference linear scan -----

// Reference implementation of the HeadTail candidate filter exactly as it
// was before the bitset: per-pair linear std::find over the coaccept list,
// with the reference DFS closure.
std::vector<Hypothesis> reference_headtail_candidates(const sg::SyncGraph& sg,
                                                      const CoExec& coexec,
                                                      std::vector<NodeId> heads) {
  const graph::Reachability reach(sg.control_graph());
  std::vector<Hypothesis> out;
  for (NodeId h : heads) {
    const auto coaccept = coaccept_nodes(sg, h);
    for (NodeId t : sg.nodes_of_task(sg.node(h).task)) {
      if (t == h) continue;
      if (!reach.reaches(VertexId(h.value), VertexId(t.value))) continue;
      if (sg.sync_partners(t).empty()) continue;
      if (std::find(coaccept.begin(), coaccept.end(), t) != coaccept.end())
        continue;
      if (!coexec.coexecutable(h, t)) continue;
      out.push_back(Hypothesis{.head1 = h, .tail1 = t});
    }
  }
  return out;
}

TEST(CoacceptBitset, HeadTailEnumerationMatchesLinearScanOnCorpus) {
  for (const sg::SyncGraph& g : seeded_graphs()) {
    const AnalysisContext ctx(g);
    const Precedence precedence(ctx);
    const CoExec coexec(ctx);
    RefinedOptions options;
    options.mode = HypothesisMode::HeadTail;
    const auto got = enumerate_hypotheses(ctx, precedence, coexec, options);
    const auto expected =
        reference_headtail_candidates(g, coexec, possible_heads(g));
    EXPECT_EQ(keys_of(got), keys_of(expected));
  }
}

// A head whose signal has many sibling accepts spread across its own task:
// the coaccept list is long, and tails that ARE coaccepts must still be
// excluded by the bitset exactly as by the scan.
TEST(CoacceptBitset, ExcludesCoacceptTailsOnAcceptHeavyTask) {
  const sg::SyncGraph g = graph_of(R"(
task t is
begin
  accept m;
  accept m;
  accept m;
  accept other;
end t;
task u is begin send t.m; send t.m; send t.m; send t.other; end u;
)");
  const AnalysisContext ctx(g);
  const Precedence precedence(ctx);
  const CoExec coexec(ctx);
  RefinedOptions options;
  options.mode = HypothesisMode::HeadTail;
  const auto got = enumerate_hypotheses(ctx, precedence, coexec, options);
  const auto expected =
      reference_headtail_candidates(g, coexec, possible_heads(g));
  EXPECT_EQ(keys_of(got), keys_of(expected));
  // Sanity: no candidate pairs a head with a same-signal accept tail.
  for (const Hypothesis& h : got) {
    const auto coaccept = coaccept_nodes(g, h.head1);
    EXPECT_TRUE(std::find(coaccept.begin(), coaccept.end(), h.tail1) ==
                coaccept.end());
  }
}

// ----- context invariants -----

TEST(AnalysisContext, ExposesGraphAndClosure) {
  const sg::SyncGraph g = graph_of(R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)");
  const AnalysisContext ctx(g);
  EXPECT_EQ(&ctx.graph(), &g);
  EXPECT_TRUE(ctx.control_acyclic());
  // b reaches e in every finalized graph with at least one task entry.
  EXPECT_TRUE(ctx.reaches(g.begin_node(), g.end_node()));
  EXPECT_FALSE(ctx.reaches(g.end_node(), g.begin_node()));
}

}  // namespace
}  // namespace siwa::core
