// End-to-end corpus: curated MiniAda programs with known ground truth, run
// through the full pipeline (parse -> sema -> wave oracle -> all four
// detector configurations -> stall analysis), asserting both the oracle
// verdicts and every safety relation between the layers.
#include <gtest/gtest.h>

#include "core/certifier.h"
#include "lang/parser.h"
#include "stall/balance.h"
#include "syncgraph/builder.h"
#include "wavesim/explorer.h"
#include "wavesim/shared.h"

namespace siwa {
namespace {

struct CorpusCase {
  const char* name;
  const char* source;
  bool deadlocks;  // ground truth: some reachable wave has a deadlock
  bool stalls;     // ground truth: some reachable wave has a stall
};

// clang-format off
const CorpusCase kCorpus[] = {
    {"handshake", R"(
task a is begin send b.d; accept ack; end a;
task b is begin accept d; send a.ack; end b;
)", false, false},

    // Figure 2(b) flavor: mutual wait.
    {"mutual_wait", R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)", true, false},

    // Figure 2(a) flavor: a required partner never arrives.
    {"orphan_accept", R"(
task a is begin accept never; end a;
task b is begin send c.d; end b;
task c is begin accept d; end c;
)", false, true},

    {"three_task_chain", R"(
task a is begin send b.x; accept fin; end a;
task b is begin accept x; send c.y; end b;
task c is begin accept y; send a.fin; end c;
)", false, false},

    {"crossed_order", R"(
task a is begin send b.m1; send b.m2; end a;
task b is begin accept m2; accept m1; end b;
)", true, false},

    {"branch_one_side_stalls", R"(
task t is
begin
  if c then
    accept m;
  end if;
end t;
task u is begin send t.m; end u;
)", false, true},

    {"branch_both_sides_fine", R"(
task t is
begin
  if c then
    accept m;
  else
    accept m;
  end if;
end t;
task u is begin send t.m; end u;
)", false, false},

    {"loop_producer_consumer", R"(
task t is begin while c loop accept m; end loop; end t;
task u is begin while d loop send t.m; end loop; end u;
)", false, true},  // iteration counts may disagree

    {"conditional_deadlock", R"(
task a is
begin
  if c then
    accept ping;
    send b.pong;
  else
    send b.pong;
    accept ping;
  end if;
end a;
task b is begin accept pong; send a.ping; end b;
)", true, false},

    {"self_send", R"(
task a is begin send a.m; accept m; end a;
)", true, false},

    {"late_rescue", R"(
task a is begin accept go; send b.m; end a;
task b is begin accept m; end b;
task c is begin send a.go; end c;
)", false, false},

    {"nested_loop_producer", R"(
task prod is
begin
  while outer loop
    while inner loop
      send buf.put;
      accept ok;
    end loop;
  end loop;
end prod;
task buf is
begin
  while run loop
    accept put;
    send prod.ok;
  end loop;
end buf;
)", false, true},  // loop counts can disagree

    {"three_way_circular_wait", R"(
task a is begin accept x; send b.y; end a;
task b is begin accept y; send c.z; end b;
task c is begin accept z; send a.x; end c;
)", true, false},

    {"broken_circle_by_initiator", R"(
task a is begin send b.y; accept x; end a;
task b is begin accept y; send c.z; end b;
task c is begin accept z; send a.x; end c;
)", false, false},

    {"shared_condition_handoff", R"(
shared condition fast;
task a is
begin
  if fast then
    send b.quick;
  else
    send b.slow;
  end if;
end a;
task b is
begin
  if fast then
    accept quick;
  else
    accept slow;
  end if;
end b;
)", false, true},  // plain model: inconsistent arm picks stall; the
                   // assignment-exact oracle clears it (test_shared)

    {"double_meal_philosophers_mini", R"(
task fork0 is begin accept pickup; accept putdown; accept pickup; accept putdown; end fork0;
task fork1 is begin accept pickup; accept putdown; accept pickup; accept putdown; end fork1;
task phil0 is begin send fork0.pickup; send fork1.pickup; send fork0.putdown; send fork1.putdown; end phil0;
task phil1 is begin send fork1.pickup; send fork0.pickup; send fork1.putdown; send fork0.putdown; end phil1;
)", true, false},  // 2 philosophers, opposite orders: classic AB/BA

    {"accept_surplus", R"(
task server is begin accept req; accept req; accept req; end server;
task c1 is begin send server.req; end c1;
task c2 is begin send server.req; end c2;
)", false, true},  // the third accept never fires

    {"conditional_self_rescue", R"(
task t is
begin
  accept kick;
  if c then
    accept extra;
  end if;
end t;
task u is begin send t.kick; send t.extra; end u;
)", false, true},  // skip-arm leaves u's second send stranded

    // The factory-cell case study (examples/programs/factory_cell.mada):
    // procedures + for-loops + a shared maintenance mode. Plain-model
    // truth: no deadlock; inconsistent maintenance choices stall.
    {"factory_cell", R"(
shared condition maintenance;
procedure press_stroke is
begin
  send press.load;
  send monitor.arm_clear;
  accept pressed;
end press_stroke;
task controller is
begin
  if maintenance then
    send robot.calibrate;
    accept calibrated;
  else
    for 2 loop
      send conveyor.advance;
      accept part_ready;
      send robot.pick;
      accept placed;
      call press_stroke;
    end loop;
  end if;
end controller;
task conveyor is
begin
  if maintenance then
    null;
  else
    for 2 loop
      accept advance;
      send controller.part_ready;
    end loop;
  end if;
end conveyor;
task robot is
begin
  if maintenance then
    accept calibrate;
    send controller.calibrated;
  else
    for 2 loop
      accept pick;
      send controller.placed;
    end loop;
  end if;
end robot;
task press is
begin
  if maintenance then
    null;
  else
    for 2 loop
      accept load;
      accept safety_ok;
      send controller.pressed;
    end loop;
  end if;
end press;
task monitor is
begin
  if maintenance then
    null;
  else
    for 2 loop
      accept arm_clear;
      send press.safety_ok;
    end loop;
  end if;
end monitor;
)", false, true},

    {"diamond_reconvergence", R"(
task t is
begin
  accept start;
  if c then
    accept left;
  else
    accept right;
  end if;
  accept fin;
end t;
task u is
begin
  send t.start;
  if d then
    send t.left;
  else
    send t.right;
  end if;
  send t.fin;
end u;
)", false, true},  // u may pick the arm t did not take
};
// clang-format on

class CorpusTest : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(CorpusTest, OracleMatchesGroundTruth) {
  const CorpusCase& c = GetParam();
  const lang::Program program = lang::parse_and_check_or_throw(c.source);
  const sg::SyncGraph g = sg::build_sync_graph(program);
  ASSERT_TRUE(g.validate(true).empty());

  wavesim::ExploreOptions options;
  options.max_states = 200'000;
  const wavesim::ExploreResult truth =
      wavesim::WaveExplorer(g, options).explore();
  ASSERT_TRUE(truth.complete);
  EXPECT_EQ(truth.any_deadlock, c.deadlocks) << c.name;
  EXPECT_EQ(truth.any_stall, c.stalls) << c.name;
}

TEST_P(CorpusTest, DetectorsAreSafeAndOrdered) {
  const CorpusCase& c = GetParam();
  const lang::Program program = lang::parse_and_check_or_throw(c.source);

  bool naive_free = false;
  bool single_free = false;
  bool pair_free = false;
  for (auto [algorithm, out] :
       {std::pair<core::Algorithm, bool*>{core::Algorithm::Naive, &naive_free},
        {core::Algorithm::RefinedSingle, &single_free},
        {core::Algorithm::RefinedHeadPair, &pair_free}}) {
    core::CertifyOptions opt;
    opt.algorithm = algorithm;
    const core::CertifyResult r = certify_program(program, opt);
    *out = r.certified_free;
    if (c.deadlocks) {
      EXPECT_FALSE(r.certified_free)
          << c.name << " missed by " << core::algorithm_name(algorithm);
    }
    if (!r.certified_free) {
      EXPECT_FALSE(r.witness.empty()) << c.name;
    }
  }
  // Precision ordering.
  if (naive_free) {
    EXPECT_TRUE(single_free) << c.name;
  }
  if (single_free) {
    EXPECT_TRUE(pair_free) << c.name;
  }
}

TEST_P(CorpusTest, StallBalanceIsSafe) {
  const CorpusCase& c = GetParam();
  const lang::Program program = lang::parse_and_check_or_throw(c.source);
  const stall::BalanceVerdict verdict = stall::check_stall_balance(program);
  // The balance check honors shared-condition semantics, so its reference
  // truth is the assignment-exact oracle; for programs without shared
  // conditions that coincides with the corpus column.
  const bool stall_truth =
      program.shared_conditions.empty()
          ? c.stalls
          : wavesim::explore_shared(program).combined.any_stall;
  if (verdict.stall_free) {
    EXPECT_FALSE(stall_truth) << c.name;
  }
  // And on this corpus the balance check is exact: balanced programs are
  // the non-stalling ones.
  EXPECT_EQ(verdict.stall_free, !stall_truth) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorpusTest, ::testing::ValuesIn(kCorpus),
    [](const ::testing::TestParamInfo<CorpusCase>& info) {
      return info.param.name;
    });

// The certifier certifies clean programs in this corpus at some level of
// the refinement spectrum; record which (documents expected precision).
TEST(CorpusPrecision, CleanProgramsCertifiedSomewhere) {
  std::size_t certified = 0;
  std::size_t clean = 0;
  for (const CorpusCase& c : kCorpus) {
    if (c.deadlocks) continue;
    ++clean;
    const lang::Program program = lang::parse_and_check_or_throw(c.source);
    for (core::Algorithm algorithm :
         {core::Algorithm::Naive, core::Algorithm::RefinedSingle,
          core::Algorithm::RefinedHeadPair}) {
      core::CertifyOptions opt;
      opt.algorithm = algorithm;
      if (certify_program(program, opt).certified_free) {
        ++certified;
        break;
      }
    }
  }
  // Most clean corpus programs are certifiable; the bound documents the
  // current precision and should only ever go up.
  EXPECT_GE(certified, clean - 2);
}

}  // namespace
}  // namespace siwa
