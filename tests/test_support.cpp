#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <unordered_set>

#include "support/bitset.h"
#include "support/cli.h"
#include "support/diagnostics.h"
#include "support/ids.h"
#include "support/interner.h"

namespace siwa {
namespace {

TEST(ParseSizeArg, AcceptsPlainDecimals) {
  EXPECT_EQ(support::parse_size_arg("0"), std::size_t{0});
  EXPECT_EQ(support::parse_size_arg("42"), std::size_t{42});
  EXPECT_EQ(support::parse_size_arg("007"), std::size_t{7});
  const std::size_t max = std::numeric_limits<std::size_t>::max();
  EXPECT_EQ(support::parse_size_arg(std::to_string(max)), max);
}

TEST(ParseSizeArg, RejectsEverythingElse) {
  EXPECT_EQ(support::parse_size_arg(""), std::nullopt);
  EXPECT_EQ(support::parse_size_arg("-1"), std::nullopt);   // no sign
  EXPECT_EQ(support::parse_size_arg("+1"), std::nullopt);
  EXPECT_EQ(support::parse_size_arg("1x"), std::nullopt);   // trailing junk
  EXPECT_EQ(support::parse_size_arg(" 1"), std::nullopt);   // no whitespace
  EXPECT_EQ(support::parse_size_arg("1 "), std::nullopt);
  EXPECT_EQ(support::parse_size_arg("0x10"), std::nullopt); // decimal only
  EXPECT_EQ(support::parse_size_arg("1e3"), std::nullopt);
}

TEST(ParseSizeArg, RejectsOverflowInsteadOfWrapping) {
  const std::size_t max = std::numeric_limits<std::size_t>::max();
  std::string over = std::to_string(max);
  ++over.back();  // max ends in 5 (2^64-1) or 7 (2^32-1); +1 never carries
  EXPECT_EQ(support::parse_size_arg(over), std::nullopt);
  EXPECT_EQ(support::parse_size_arg(std::to_string(max) + "0"), std::nullopt);
}

TEST(Ids, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(Ids, ConstructionAndIndex) {
  NodeId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.index(), 7u);
  EXPECT_EQ(id.value, 7);
}

TEST(Ids, Comparisons) {
  EXPECT_EQ(TaskId(3), TaskId(3));
  EXPECT_NE(TaskId(3), TaskId(4));
  EXPECT_LT(TaskId(3), TaskId(4));
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<TaskId, NodeId>);
  static_assert(!std::is_same_v<NodeId, ClgNodeId>);
}

TEST(Ids, Hashable) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId(1));
  set.insert(NodeId(1));
  set.insert(NodeId(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Bitset, SetTestReset) {
  DynamicBitset bits(130);
  EXPECT_FALSE(bits.test(0));
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
}

TEST(Bitset, CountAndAny) {
  DynamicBitset bits(100);
  EXPECT_FALSE(bits.any());
  EXPECT_EQ(bits.count(), 0u);
  bits.set(3);
  bits.set(99);
  EXPECT_TRUE(bits.any());
  EXPECT_EQ(bits.count(), 2u);
}

TEST(Bitset, MergeReportsChange) {
  DynamicBitset a(70);
  DynamicBitset b(70);
  b.set(69);
  EXPECT_TRUE(a.merge(b));
  EXPECT_TRUE(a.test(69));
  EXPECT_FALSE(a.merge(b));  // no new bits
}

TEST(Bitset, Intersect) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  a.intersect(b);
  EXPECT_FALSE(a.test(1));
  EXPECT_TRUE(a.test(2));
  EXPECT_FALSE(a.test(3));
}

TEST(Bitset, ForEachVisitsInOrder) {
  DynamicBitset bits(200);
  bits.set(5);
  bits.set(64);
  bits.set(190);
  std::vector<std::size_t> seen;
  bits.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{5, 64, 190}));
}

TEST(Bitset, Equality) {
  DynamicBitset a(40);
  DynamicBitset b(40);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_FALSE(a == b);
}

TEST(BitMatrix, RowsIndependent) {
  BitMatrix m(8);
  m.set(2, 5);
  EXPECT_TRUE(m.test(2, 5));
  EXPECT_FALSE(m.test(5, 2));
  EXPECT_EQ(m.row(2).count(), 1u);
  EXPECT_EQ(m.row(3).count(), 0u);
}

TEST(Interner, RoundTrip) {
  Interner interner;
  const Symbol a = interner.intern("alpha");
  const Symbol b = interner.intern("beta");
  const Symbol a2 = interner.intern("alpha");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.text(a), "alpha");
  EXPECT_EQ(interner.text(b), "beta");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(Interner, CopyKeepsSymbols) {
  Interner interner;
  const Symbol a = interner.intern("x");
  Interner copy = interner;
  EXPECT_EQ(copy.text(a), "x");
  const Symbol b = copy.intern("y");
  EXPECT_NE(a, b);
}

TEST(Interner, EmptyStringIsAValidSymbol) {
  Interner interner;
  const Symbol empty = interner.intern("");
  EXPECT_TRUE(empty.valid());
  EXPECT_EQ(interner.text(empty), "");
  EXPECT_EQ(interner.intern(""), empty);
}

TEST(Bitset, CountAndMatchesManualIntersection) {
  DynamicBitset a(130);
  DynamicBitset b(130);
  a.set(0); a.set(64); a.set(129);
  b.set(64); b.set(129); b.set(1);
  EXPECT_EQ(a.count_and(b), 2u);
  DynamicBitset c = a;
  c.intersect(b);
  EXPECT_EQ(c.count(), 2u);
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticSink sink;
  EXPECT_FALSE(sink.has_errors());
  sink.warning({1, 2}, "careful");
  EXPECT_FALSE(sink.has_errors());
  sink.error({3, 4}, "broken");
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.error_count(), 1u);
  EXPECT_EQ(sink.diagnostics().size(), 2u);
  EXPECT_NE(sink.to_string().find("3:4"), std::string::npos);
  EXPECT_NE(sink.to_string().find("broken"), std::string::npos);
}

TEST(Diagnostics, ToStringIsSortedBySourceLocation) {
  DiagnosticSink sink;
  sink.warning({9, 1}, "later");
  sink.error({2, 7}, "early");
  sink.error({2, 3}, "earlier column");
  const std::string out = sink.to_string();
  const auto later = out.find("later");
  const auto early = out.find("early");
  const auto earlier = out.find("earlier column");
  ASSERT_NE(later, std::string::npos);
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(earlier, std::string::npos);
  EXPECT_LT(earlier, early);
  EXPECT_LT(early, later);
  // The sink itself keeps emission order; only the report is sorted.
  EXPECT_EQ(sink.diagnostics()[0].message, "later");
}

TEST(Diagnostics, SortAndDedupeDropsIdenticalEntries) {
  DiagnosticSink sink;
  sink.error({4, 2}, "dup");
  sink.warning({1, 1}, "keep");
  sink.error({4, 2}, "dup");
  sink.error({4, 2}, "dup", "SIWA001");  // different rule tag: kept
  const auto sorted = sink.sorted_diagnostics();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].message, "keep");
  EXPECT_EQ(sorted[1].loc.line, 4);
  EXPECT_EQ(sorted[2].loc.line, 4);
  EXPECT_NE(sorted[1].rule_id, sorted[2].rule_id);
}

TEST(Diagnostics, SeverityOrdersWithinOneLocation) {
  std::vector<Diagnostic> diags;
  Diagnostic w;
  w.severity = Severity::Warning;
  w.loc = {5, 5};
  w.message = "warn";
  Diagnostic e;
  e.severity = Severity::Error;
  e.loc = {5, 5};
  e.message = "err";
  diags.push_back(w);
  diags.push_back(e);
  sort_and_dedupe(diags);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].severity, Severity::Error);
  EXPECT_EQ(diags[1].severity, Severity::Warning);
}

TEST(Diagnostics, RuleTaggedToStringIncludesRuleId) {
  DiagnosticSink sink;
  sink.warning({3, 5}, "self-send", "SIWA003");
  EXPECT_NE(sink.to_string().find("warning[SIWA003] at 3:5"),
            std::string::npos);
}

}  // namespace
}  // namespace siwa
