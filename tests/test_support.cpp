#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "support/bitset.h"
#include "support/simd.h"
#include "support/cli.h"
#include "support/diagnostics.h"
#include "support/ids.h"
#include "support/interner.h"

namespace siwa {
namespace {

TEST(ParseSizeArg, AcceptsPlainDecimals) {
  EXPECT_EQ(support::parse_size_arg("0"), std::size_t{0});
  EXPECT_EQ(support::parse_size_arg("42"), std::size_t{42});
  EXPECT_EQ(support::parse_size_arg("007"), std::size_t{7});
  const std::size_t max = std::numeric_limits<std::size_t>::max();
  EXPECT_EQ(support::parse_size_arg(std::to_string(max)), max);
}

TEST(ParseSizeArg, RejectsEverythingElse) {
  EXPECT_EQ(support::parse_size_arg(""), std::nullopt);
  EXPECT_EQ(support::parse_size_arg("-1"), std::nullopt);   // no sign
  EXPECT_EQ(support::parse_size_arg("+1"), std::nullopt);
  EXPECT_EQ(support::parse_size_arg("1x"), std::nullopt);   // trailing junk
  EXPECT_EQ(support::parse_size_arg(" 1"), std::nullopt);   // no whitespace
  EXPECT_EQ(support::parse_size_arg("1 "), std::nullopt);
  EXPECT_EQ(support::parse_size_arg("0x10"), std::nullopt); // decimal only
  EXPECT_EQ(support::parse_size_arg("1e3"), std::nullopt);
}

TEST(ParseSizeArg, RejectsOverflowInsteadOfWrapping) {
  const std::size_t max = std::numeric_limits<std::size_t>::max();
  std::string over = std::to_string(max);
  ++over.back();  // max ends in 5 (2^64-1) or 7 (2^32-1); +1 never carries
  EXPECT_EQ(support::parse_size_arg(over), std::nullopt);
  EXPECT_EQ(support::parse_size_arg(std::to_string(max) + "0"), std::nullopt);
}

TEST(Ids, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(Ids, ConstructionAndIndex) {
  NodeId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.index(), 7u);
  EXPECT_EQ(id.value, 7);
}

TEST(Ids, Comparisons) {
  EXPECT_EQ(TaskId(3), TaskId(3));
  EXPECT_NE(TaskId(3), TaskId(4));
  EXPECT_LT(TaskId(3), TaskId(4));
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<TaskId, NodeId>);
  static_assert(!std::is_same_v<NodeId, ClgNodeId>);
}

TEST(Ids, Hashable) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId(1));
  set.insert(NodeId(1));
  set.insert(NodeId(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Bitset, SetTestReset) {
  DynamicBitset bits(130);
  EXPECT_FALSE(bits.test(0));
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
}

TEST(Bitset, CountAndAny) {
  DynamicBitset bits(100);
  EXPECT_FALSE(bits.any());
  EXPECT_EQ(bits.count(), 0u);
  bits.set(3);
  bits.set(99);
  EXPECT_TRUE(bits.any());
  EXPECT_EQ(bits.count(), 2u);
}

TEST(Bitset, MergeReportsChange) {
  DynamicBitset a(70);
  DynamicBitset b(70);
  b.set(69);
  EXPECT_TRUE(a.merge(b));
  EXPECT_TRUE(a.test(69));
  EXPECT_FALSE(a.merge(b));  // no new bits
}

TEST(Bitset, Intersect) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  a.intersect(b);
  EXPECT_FALSE(a.test(1));
  EXPECT_TRUE(a.test(2));
  EXPECT_FALSE(a.test(3));
}

TEST(Bitset, ForEachVisitsInOrder) {
  DynamicBitset bits(200);
  bits.set(5);
  bits.set(64);
  bits.set(190);
  std::vector<std::size_t> seen;
  bits.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{5, 64, 190}));
}

TEST(Bitset, Equality) {
  DynamicBitset a(40);
  DynamicBitset b(40);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_FALSE(a == b);
}

TEST(BitMatrix, RowsIndependent) {
  BitMatrix m(8);
  m.set(2, 5);
  EXPECT_TRUE(m.test(2, 5));
  EXPECT_FALSE(m.test(5, 2));
  EXPECT_EQ(m.row(2).count(), 1u);
  EXPECT_EQ(m.row(3).count(), 0u);
}

TEST(Interner, RoundTrip) {
  Interner interner;
  const Symbol a = interner.intern("alpha");
  const Symbol b = interner.intern("beta");
  const Symbol a2 = interner.intern("alpha");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.text(a), "alpha");
  EXPECT_EQ(interner.text(b), "beta");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(Interner, CopyKeepsSymbols) {
  Interner interner;
  const Symbol a = interner.intern("x");
  Interner copy = interner;
  EXPECT_EQ(copy.text(a), "x");
  const Symbol b = copy.intern("y");
  EXPECT_NE(a, b);
}

TEST(Interner, EmptyStringIsAValidSymbol) {
  Interner interner;
  const Symbol empty = interner.intern("");
  EXPECT_TRUE(empty.valid());
  EXPECT_EQ(interner.text(empty), "");
  EXPECT_EQ(interner.intern(""), empty);
}

TEST(Bitset, CountAndMatchesManualIntersection) {
  DynamicBitset a(130);
  DynamicBitset b(130);
  a.set(0); a.set(64); a.set(129);
  b.set(64); b.set(129); b.set(1);
  EXPECT_EQ(a.count_and(b), 2u);
  DynamicBitset c = a;
  c.intersect(b);
  EXPECT_EQ(c.count(), 2u);
}

TEST(Bitset, Transpose64x64RoundTripsAndMatchesPerBit) {
  std::uint64_t a[64];
  std::uint64_t state = 0x2545f4914f6cdd1dull;
  for (auto& w : a) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    w = state;
  }
  std::uint64_t t[64];
  std::copy(std::begin(a), std::end(a), std::begin(t));
  transpose_64x64(t);
  for (std::size_t r = 0; r < 64; ++r)
    for (std::size_t c = 0; c < 64; ++c)
      ASSERT_EQ((a[r] >> c) & 1, (t[c] >> r) & 1) << r << "," << c;
  transpose_64x64(t);  // involution
  EXPECT_TRUE(std::equal(std::begin(a), std::end(a), std::begin(t)));
}

TEST(Bitset, TransposeBitMatrixHandlesRaggedEdge) {
  // 130 bits: two full 64-bit blocks plus a 2-bit ragged edge in both
  // dimensions, so padding rows/columns are exercised.
  constexpr std::size_t kN = 130;
  const std::size_t words = bitset_words_for(kN);
  std::vector<std::uint64_t> src(kN * words, 0), dst(kN * words, ~0ull);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t r = 0; r < kN; ++r)
    for (std::size_t c = 0; c < kN; ++c) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      if ((state >> 60) == 0)
        BitRow(src.data() + r * words, kN).set(c);
    }
  transpose_bit_matrix(dst.data(), src.data(), kN);
  for (std::size_t r = 0; r < kN; ++r) {
    ConstBitRow row(dst.data() + r * words, kN);
    for (std::size_t c = 0; c < kN; ++c)
      ASSERT_EQ(row.test(c),
                ConstBitRow(src.data() + c * words, kN).test(r))
          << r << "," << c;
    // Padding bits past kN must be zero (overwrite, not merge).
    for (std::size_t b = kN; b < words * kBitsetWordBits; ++b)
      ASSERT_FALSE((dst[r * words + b / 64] >> (b % 64)) & 1);
  }
}

// Every binary bitset operation requires operands of identical width: a
// silent word-count mismatch would read or write out of bounds (the kernel
// bug this release fixed). Each one must trip SIWA_REQUIRE instead.
TEST(BitsetDeathTest, BinaryOpsRejectMismatchedWidths) {
  DynamicBitset narrow(64);
  DynamicBitset wide(128);
  EXPECT_DEATH(narrow |= wide, "bitset size mismatch");
  EXPECT_DEATH(wide |= narrow, "bitset size mismatch");
  EXPECT_DEATH(narrow &= wide, "bitset size mismatch");
  EXPECT_DEATH(narrow.merge(wide), "bitset size mismatch");
  EXPECT_DEATH(narrow.intersect(wide), "bitset size mismatch");
  EXPECT_DEATH((void)narrow.intersects(wide), "bitset size mismatch");
  EXPECT_DEATH((void)narrow.count_and(wide), "bitset size mismatch");
  EXPECT_DEATH(narrow.assign(wide), "bitset size mismatch");
}

// The AVX2 and portable kernels must be bit-identical; cross-check them on
// data wide enough to exercise the vector body plus a scalar tail.
TEST(Simd, BackendsAgree) {
  constexpr std::size_t kBits = 64 * 13 + 64;  // 14 words: 3 AVX2 blocks + 2
  DynamicBitset a(kBits);
  DynamicBitset b(kBits);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (std::size_t i = 0; i < kBits; ++i) {
    if (next() & 1) a.set(i);
    if (next() & 2) b.set(i);
  }

  const auto run = [&] {
    DynamicBitset or_ab = a;
    const bool changed = or_ab.merge(b);
    DynamicBitset and_ab = a;
    and_ab.intersect(b);
    return std::tuple(or_ab, and_ab, changed, a.intersects(b), a.count_and(b),
                      a.count());
  };

  const auto native = run();
  support::simd::force_portable(true);
  EXPECT_STREQ(support::simd::active_backend(), "portable");
  const auto portable = run();
  support::simd::force_portable(false);

  EXPECT_EQ(std::get<0>(native), std::get<0>(portable));
  EXPECT_EQ(std::get<1>(native), std::get<1>(portable));
  EXPECT_EQ(std::get<2>(native), std::get<2>(portable));
  EXPECT_EQ(std::get<3>(native), std::get<3>(portable));
  EXPECT_EQ(std::get<4>(native), std::get<4>(portable));
  EXPECT_EQ(std::get<5>(native), std::get<5>(portable));
}

TEST(Simd, OrIntoReportsChangeExactly) {
  for (std::size_t words : {std::size_t{1}, std::size_t{4}, std::size_t{9}}) {
    std::vector<std::uint64_t> dst(words, 0xff00ff00ff00ff00ull);
    std::vector<std::uint64_t> same(dst);
    EXPECT_FALSE(support::simd::or_into(dst.data(), same.data(), words));
    std::vector<std::uint64_t> more(words, 0);
    more[words - 1] = 1;  // one new bit in the last word
    EXPECT_TRUE(support::simd::or_into(dst.data(), more.data(), words));
    EXPECT_FALSE(support::simd::or_into(dst.data(), more.data(), words));
  }
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticSink sink;
  EXPECT_FALSE(sink.has_errors());
  sink.warning({1, 2}, "careful");
  EXPECT_FALSE(sink.has_errors());
  sink.error({3, 4}, "broken");
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.error_count(), 1u);
  EXPECT_EQ(sink.diagnostics().size(), 2u);
  EXPECT_NE(sink.to_string().find("3:4"), std::string::npos);
  EXPECT_NE(sink.to_string().find("broken"), std::string::npos);
}

TEST(Diagnostics, ToStringIsSortedBySourceLocation) {
  DiagnosticSink sink;
  sink.warning({9, 1}, "later");
  sink.error({2, 7}, "early");
  sink.error({2, 3}, "earlier column");
  const std::string out = sink.to_string();
  const auto later = out.find("later");
  const auto early = out.find("early");
  const auto earlier = out.find("earlier column");
  ASSERT_NE(later, std::string::npos);
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(earlier, std::string::npos);
  EXPECT_LT(earlier, early);
  EXPECT_LT(early, later);
  // The sink itself keeps emission order; only the report is sorted.
  EXPECT_EQ(sink.diagnostics()[0].message, "later");
}

TEST(Diagnostics, SortAndDedupeDropsIdenticalEntries) {
  DiagnosticSink sink;
  sink.error({4, 2}, "dup");
  sink.warning({1, 1}, "keep");
  sink.error({4, 2}, "dup");
  sink.error({4, 2}, "dup", "SIWA001");  // different rule tag: kept
  const auto sorted = sink.sorted_diagnostics();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].message, "keep");
  EXPECT_EQ(sorted[1].loc.line, 4);
  EXPECT_EQ(sorted[2].loc.line, 4);
  EXPECT_NE(sorted[1].rule_id, sorted[2].rule_id);
}

TEST(Diagnostics, SeverityOrdersWithinOneLocation) {
  std::vector<Diagnostic> diags;
  Diagnostic w;
  w.severity = Severity::Warning;
  w.loc = {5, 5};
  w.message = "warn";
  Diagnostic e;
  e.severity = Severity::Error;
  e.loc = {5, 5};
  e.message = "err";
  diags.push_back(w);
  diags.push_back(e);
  sort_and_dedupe(diags);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].severity, Severity::Error);
  EXPECT_EQ(diags[1].severity, Severity::Warning);
}

TEST(Diagnostics, RuleTaggedToStringIncludesRuleId) {
  DiagnosticSink sink;
  sink.warning({3, 5}, "self-send", "SIWA003");
  EXPECT_NE(sink.to_string().find("warning[SIWA003] at 3:5"),
            std::string::npos);
}

}  // namespace
}  // namespace siwa
