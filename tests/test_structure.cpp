// Structural property sweeps: CLG construction invariants over random
// programs, sync graph well-formedness, and frontend robustness against
// malformed input (must diagnose, never crash).
#include <gtest/gtest.h>

#include <random>

#include "gen/random_program.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "lang/sema.h"
#include "syncgraph/builder.h"
#include "syncgraph/clg.h"

namespace siwa {
namespace {

class ClgStructure : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClgStructure, InvariantsHold) {
  gen::RandomProgramConfig config;
  config.tasks = 4;
  config.rendezvous_pairs = 8;
  config.unmatched_rendezvous = 1;
  config.branch_probability = 0.3;
  config.loop_probability = 0.15;
  config.seed = GetParam();
  const lang::Program program = gen::random_program(config);
  const sg::SyncGraph g = sg::build_sync_graph(program);
  EXPECT_TRUE(g.validate(true).empty());

  const sg::Clg clg(g);

  // Node count: b, e, plus an i/o pair per rendezvous node.
  EXPECT_EQ(clg.node_count(), 2u + 2u * (g.node_count() - 2u));

  // Edge count: internal pairs + control edges + 2 per undirected sync edge.
  EXPECT_EQ(clg.edge_count(), (g.node_count() - 2u) +
                                  g.control_edge_count() +
                                  2u * g.sync_edge_count());

  std::size_t sync_edges_seen = 0;
  for (std::size_t v = 0; v < clg.node_count(); ++v) {
    const ClgNodeId from(v);
    for (VertexId w : clg.graph().successors(VertexId(v))) {
      const ClgNodeId to(w.index());
      if (clg.is_sync_edge(from, to)) {
        ++sync_edges_seen;
        // Sync edges run out-node -> in-node of *different* origins, and
        // the origins are sync partners in the source graph.
        EXPECT_FALSE(clg.is_in_node(from));
        EXPECT_TRUE(clg.is_in_node(to));
        EXPECT_NE(clg.origin(from), clg.origin(to));
        EXPECT_TRUE(g.has_sync_edge(clg.origin(from), clg.origin(to)));
        // Constraint 1b: an in-node's outgoing edges are never sync edges,
        // so no two sync edges can be consecutive.
        for (VertexId x : clg.graph().successors(w))
          EXPECT_FALSE(clg.is_sync_edge(to, ClgNodeId(x.index())));
      }
    }
  }
  EXPECT_EQ(sync_edges_seen, 2u * g.sync_edge_count());

  // Every rendezvous node's split pair is wired with the internal edge.
  for (std::size_t i = 2; i < g.node_count(); ++i) {
    const NodeId r(i);
    EXPECT_TRUE(clg.graph().has_edge(VertexId(clg.out_of(r).index()),
                                     VertexId(clg.in_of(r).index())));
    EXPECT_EQ(clg.origin(clg.in_of(r)), r);
    EXPECT_EQ(clg.origin(clg.out_of(r)), r);
  }
}

TEST_P(ClgStructure, ControlEdgesMapPerConstruction) {
  gen::RandomProgramConfig config;
  config.tasks = 3;
  config.rendezvous_pairs = 6;
  config.branch_probability = 0.25;
  config.seed = GetParam() + 1000;
  const sg::SyncGraph g =
      sg::build_sync_graph(gen::random_program(config));
  const sg::Clg clg(g);

  // Steps 4/5: each source control edge appears exactly once in its
  // transformed shape.
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const NodeId r(i);
    for (NodeId s : g.control_successors(r)) {
      VertexId from;
      VertexId to;
      if (r == g.begin_node()) {
        from = VertexId(clg.b().index());
        to = s == g.end_node() ? VertexId(clg.e().index())
                               : VertexId(clg.out_of(s).index());
      } else if (s == g.end_node()) {
        from = VertexId(clg.in_of(r).index());
        to = VertexId(clg.e().index());
      } else {
        from = VertexId(clg.in_of(r).index());
        to = VertexId(clg.out_of(s).index());
      }
      EXPECT_TRUE(clg.graph().has_edge(from, to))
          << g.describe(r) << " -> " << g.describe(s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClgStructure,
                         ::testing::Range<std::uint64_t>(1, 31));

// Frontend robustness: mangled inputs must produce diagnostics (or parse),
// never crash. Deterministic pseudo-fuzz over token soup and truncations.
TEST(FrontendRobustness, TokenSoupNeverCrashes) {
  const char* vocabulary[] = {"task",  "is",    "begin", "end",  "send",
                              "accept", "if",    "then",  "else", "elsif",
                              "while", "loop",  "null",  ";",    ".",
                              ",",      "ident", "t1",    "m",    "shared",
                              "condition"};
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<std::size_t> pick(0, std::size(vocabulary) - 1);
  std::uniform_int_distribution<int> len(0, 60);
  for (int round = 0; round < 300; ++round) {
    std::string source;
    const int n = len(rng);
    for (int k = 0; k < n; ++k) {
      source += vocabulary[pick(rng)];
      source += ' ';
    }
    DiagnosticSink sink;
    const auto program = lang::parse_program(source, sink);
    if (program) {
      lang::check_program(*program, sink);
      if (!sink.has_errors() && !program->tasks.empty()) {
        // Anything that fully checks must survive the whole pipeline.
        const sg::SyncGraph g = sg::build_sync_graph(*program);
        EXPECT_TRUE(g.validate(true).empty());
      }
    } else {
      EXPECT_TRUE(sink.has_errors());
    }
  }
}

TEST(FrontendRobustness, TruncationsOfValidProgram) {
  const std::string source = R"(
shared condition v;
task t is
begin
  if v then
    accept m1;
  elsif w then
    accept m2;
  end if;
  while c loop
    send u.k;
  end loop;
end t;
task u is begin accept k; send t.m1; send t.m2; end u;
)";
  for (std::size_t cut = 0; cut < source.size(); cut += 3) {
    DiagnosticSink sink;
    const auto program = lang::parse_program(source.substr(0, cut), sink);
    if (program) lang::check_program(*program, sink);
    // No assertion on the verdict — only that nothing crashes and failed
    // parses carry diagnostics.
    if (!program) {
      EXPECT_TRUE(sink.has_errors());
    }
  }
}

TEST(FrontendRobustness, BinaryGarbage) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 100; ++round) {
    std::string source;
    for (int k = 0; k < 80; ++k)
      source.push_back(static_cast<char>(byte(rng)));
    DiagnosticSink sink;
    const auto program = lang::parse_program(source, sink);
    if (!program) {
      EXPECT_TRUE(sink.has_errors());
    }
  }
}

TEST(FrontendRobustness, PrinterParsesBackWhateverParses) {
  std::mt19937_64 rng(99);
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    gen::RandomProgramConfig config;
    config.tasks = 3;
    config.rendezvous_pairs = 6;
    config.branch_probability = 0.35;
    config.loop_probability = 0.2;
    config.shared_conditions = 1;
    config.seed = seed;
    const lang::Program program = gen::random_program(config);
    const std::string printed = lang::print_program(program);
    DiagnosticSink sink;
    const auto reparsed = lang::parse_program(printed, sink);
    ASSERT_TRUE(reparsed.has_value()) << sink.to_string() << printed;
    EXPECT_EQ(lang::print_program(*reparsed), printed);
  }
}

}  // namespace
}  // namespace siwa
