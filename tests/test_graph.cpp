#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/dominators.h"
#include "graph/dot.h"
#include "graph/reachability.h"
#include "graph/scc.h"

namespace siwa::graph {
namespace {

Digraph chain(std::size_t n) {
  Digraph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    g.add_edge(VertexId(i), VertexId(i + 1));
  return g;
}

TEST(Digraph, AddVerticesAndEdges) {
  Digraph g;
  const VertexId a = g.add_vertex();
  const VertexId b = g.add_vertex();
  g.add_edge(a, b);
  EXPECT_EQ(g.vertex_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  ASSERT_EQ(g.successors(a).size(), 1u);
  EXPECT_EQ(g.successors(a)[0], b);
  ASSERT_EQ(g.predecessors(b).size(), 1u);
  EXPECT_EQ(g.predecessors(b)[0], a);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_FALSE(g.has_edge(b, a));
}

TEST(Scc, ChainHasSingletonComponents) {
  const Digraph g = chain(5);
  const SccResult scc = tarjan_scc(g);
  EXPECT_EQ(scc.component_count, 5u);
  for (std::size_t s : scc.component_size) EXPECT_EQ(s, 1u);
  EXPECT_FALSE(has_cycle(g));
}

TEST(Scc, CycleDetected) {
  Digraph g(4);
  g.add_edge(VertexId(0), VertexId(1));
  g.add_edge(VertexId(1), VertexId(2));
  g.add_edge(VertexId(2), VertexId(0));
  g.add_edge(VertexId(2), VertexId(3));
  const SccResult scc = tarjan_scc(g);
  EXPECT_EQ(scc.component_count, 2u);
  EXPECT_TRUE(scc.same_component(0, 1));
  EXPECT_TRUE(scc.same_component(1, 2));
  EXPECT_FALSE(scc.same_component(0, 3));
  EXPECT_TRUE(has_cycle(g));
}

TEST(Scc, SelfLoopIsCycle) {
  Digraph g(1);
  g.add_edge(VertexId(0), VertexId(0));
  EXPECT_TRUE(has_cycle(g));
}

TEST(Scc, ComponentNumbersReverseTopological) {
  // 0 -> 1 -> 2: Tarjan numbers sinks first.
  const Digraph g = chain(3);
  const SccResult scc = tarjan_scc(g);
  EXPECT_GT(scc.component_of[0], scc.component_of[1]);
  EXPECT_GT(scc.component_of[1], scc.component_of[2]);
}

TEST(Scc, RestrictedRootsLeaveOthersUnvisited) {
  Digraph g(3);
  g.add_edge(VertexId(0), VertexId(1));
  const SccResult scc =
      tarjan_scc(g.vertex_count(),
                 [&](std::size_t v, auto&& visit) {
                   for (VertexId w : g.successors(VertexId(v)))
                     visit(w.index());
                 },
                 {0});
  EXPECT_GE(scc.component_of[0], 0);
  EXPECT_GE(scc.component_of[1], 0);
  EXPECT_EQ(scc.component_of[2], -1);
}

TEST(Scc, FilteredViewDropsEdges) {
  Digraph g(2);
  g.add_edge(VertexId(0), VertexId(1));
  g.add_edge(VertexId(1), VertexId(0));
  // Unfiltered: one component of size 2.
  EXPECT_EQ(tarjan_scc(g).component_count, 1u);
  // Filter out the back edge: two singletons.
  const SccResult scc = tarjan_scc(2, [&](std::size_t v, auto&& visit) {
    for (VertexId w : g.successors(VertexId(v)))
      if (!(v == 1 && w.index() == 0)) visit(w.index());
  });
  EXPECT_EQ(scc.component_count, 2u);
}

TEST(Scc, LargeCycleIterativeSafe) {
  // Deep recursion would overflow a recursive Tarjan; the iterative one
  // must handle a 200k-vertex cycle.
  const std::size_t n = 200'000;
  Digraph g(n);
  for (std::size_t i = 0; i < n; ++i)
    g.add_edge(VertexId(i), VertexId((i + 1) % n));
  const SccResult scc = tarjan_scc(g);
  EXPECT_EQ(scc.component_count, 1u);
  EXPECT_EQ(scc.component_size[0], n);
}

TEST(Reachability, ChainReaches) {
  const Digraph g = chain(4);
  const Reachability reach(g);
  EXPECT_TRUE(reach.reaches(VertexId(0), VertexId(3)));
  EXPECT_FALSE(reach.reaches(VertexId(3), VertexId(0)));
  // >= 1 edge semantics: no trivial self-reach off a cycle.
  EXPECT_FALSE(reach.reaches(VertexId(1), VertexId(1)));
}

TEST(Reachability, SelfReachOnCycleOnly) {
  Digraph g(2);
  g.add_edge(VertexId(0), VertexId(1));
  g.add_edge(VertexId(1), VertexId(0));
  const Reachability reach(g);
  EXPECT_TRUE(reach.reaches(VertexId(0), VertexId(0)));
}

TEST(Reachability, ReachableFromIncludesStart) {
  const Digraph g = chain(3);
  const DynamicBitset set = reachable_from(g, VertexId(1));
  EXPECT_FALSE(set.test(0));
  EXPECT_TRUE(set.test(1));
  EXPECT_TRUE(set.test(2));
}

TEST(CondensedReachability, AgreesWithReferenceKernel) {
  // A graph exercising every case at once: a 3-cycle, a DAG tail hanging
  // off it, a self-loop, a source feeding the cycle, and an isolated vertex.
  Digraph g(8);
  g.add_edge(VertexId(0), VertexId(1));  // cycle 0 -> 1 -> 2 -> 0
  g.add_edge(VertexId(1), VertexId(2));
  g.add_edge(VertexId(2), VertexId(0));
  g.add_edge(VertexId(2), VertexId(3));  // DAG tail 3 -> 4
  g.add_edge(VertexId(3), VertexId(4));
  g.add_edge(VertexId(5), VertexId(5));  // self-loop
  g.add_edge(VertexId(6), VertexId(0));  // source into the cycle
  // 7 isolated.
  const Reachability ref(g);
  const CondensedReachability fast(g);
  for (std::size_t a = 0; a < 8; ++a)
    for (std::size_t b = 0; b < 8; ++b)
      EXPECT_EQ(fast.reaches(VertexId(a), VertexId(b)),
                ref.reaches(VertexId(a), VertexId(b)))
          << "a=" << a << " b=" << b;
  EXPECT_FALSE(fast.acyclic());
}

TEST(CondensedReachability, AgreesOnDagAndReportsAcyclic) {
  Digraph g(5);
  g.add_edge(VertexId(0), VertexId(1));
  g.add_edge(VertexId(0), VertexId(2));
  g.add_edge(VertexId(1), VertexId(3));
  g.add_edge(VertexId(2), VertexId(3));
  const Reachability ref(g);
  const CondensedReachability fast(g);
  for (std::size_t a = 0; a < 5; ++a)
    for (std::size_t b = 0; b < 5; ++b)
      EXPECT_EQ(fast.reaches(VertexId(a), VertexId(b)),
                ref.reaches(VertexId(a), VertexId(b)));
  EXPECT_TRUE(fast.acyclic());
  EXPECT_EQ(fast.component_count(), 5u);
}

TEST(CondensedReachability, AcyclicMatchesTopologicalOrder) {
  Digraph cyclic(1);
  cyclic.add_edge(VertexId(0), VertexId(0));
  EXPECT_EQ(CondensedReachability(cyclic).acyclic(),
            topological_order(cyclic).has_value());
  const Digraph dag = chain(3);
  EXPECT_EQ(CondensedReachability(dag).acyclic(),
            topological_order(dag).has_value());
}

TEST(CondensedReachability, SharedRowsPerComponent) {
  Digraph g(3);
  g.add_edge(VertexId(0), VertexId(1));
  g.add_edge(VertexId(1), VertexId(0));
  g.add_edge(VertexId(1), VertexId(2));
  const CondensedReachability reach(g);
  // 0 and 1 share a component and hence one physical closure row: the
  // returned views alias the same words of the flat matrix.
  EXPECT_EQ(reach.component_of(VertexId(0)), reach.component_of(VertexId(1)));
  EXPECT_EQ(reach.reachable_set(VertexId(0)).words(),
            reach.reachable_set(VertexId(1)).words());
  EXPECT_EQ(reach.component_count(), 2u);
}

TEST(CondensedReachability, ConstructionBumpsClosureCounter) {
  const std::size_t before = closure_constructions();
  const CondensedReachability fast(chain(3));
  const Reachability ref(chain(3));
  EXPECT_EQ(closure_constructions(), before + 2);
}

TEST(Topological, OrderRespectsEdges) {
  Digraph g(4);
  g.add_edge(VertexId(0), VertexId(2));
  g.add_edge(VertexId(1), VertexId(2));
  g.add_edge(VertexId(2), VertexId(3));
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i].index()] = i;
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[2]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Topological, CycleYieldsNullopt) {
  Digraph g(2);
  g.add_edge(VertexId(0), VertexId(1));
  g.add_edge(VertexId(1), VertexId(0));
  EXPECT_FALSE(topological_order(g).has_value());
}

// Regression: an empty graph is trivially acyclic — the old empty-vector
// API conflated its order with the cyclic error case.
TEST(Topological, EmptyGraphHasEngagedEmptyOrder) {
  const Digraph g(0);
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
}

// Regression: a self-loop is a cycle even with a single vertex.
TEST(Topological, SelfLoopYieldsNullopt) {
  Digraph g(1);
  g.add_edge(VertexId(0), VertexId(0));
  EXPECT_FALSE(topological_order(g).has_value());
}

TEST(Dominators, DiamondDominance) {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
  Digraph g(4);
  g.add_edge(VertexId(0), VertexId(1));
  g.add_edge(VertexId(0), VertexId(2));
  g.add_edge(VertexId(1), VertexId(3));
  g.add_edge(VertexId(2), VertexId(3));
  const Dominators dom(g, VertexId(0));
  EXPECT_EQ(dom.idom(VertexId(3)), VertexId(0));
  EXPECT_TRUE(dom.dominates(VertexId(0), VertexId(3)));
  EXPECT_FALSE(dom.dominates(VertexId(1), VertexId(3)));
  EXPECT_TRUE(dom.dominates(VertexId(3), VertexId(3)));
}

TEST(Dominators, ChainDominance) {
  const Digraph g = chain(4);
  const Dominators dom(g, VertexId(0));
  EXPECT_TRUE(dom.dominates(VertexId(1), VertexId(3)));
  EXPECT_FALSE(dom.dominates(VertexId(3), VertexId(1)));
}

TEST(Dominators, LoopDominance) {
  // 0 -> 1 -> 2 -> 1 (back edge), 2 -> 3.
  Digraph g(4);
  g.add_edge(VertexId(0), VertexId(1));
  g.add_edge(VertexId(1), VertexId(2));
  g.add_edge(VertexId(2), VertexId(1));
  g.add_edge(VertexId(2), VertexId(3));
  const Dominators dom(g, VertexId(0));
  EXPECT_TRUE(dom.dominates(VertexId(1), VertexId(2)));
  EXPECT_TRUE(dom.dominates(VertexId(2), VertexId(3)));
  EXPECT_FALSE(dom.dominates(VertexId(3), VertexId(2)));
}

TEST(Dominators, UnreachableVertex) {
  Digraph g(3);
  g.add_edge(VertexId(0), VertexId(1));
  const Dominators dom(g, VertexId(0));
  EXPECT_FALSE(dom.reachable(VertexId(2)));
  EXPECT_FALSE(dom.dominates(VertexId(0), VertexId(2)));
}

TEST(Digraph, GrowToIsIdempotentAndMonotonic) {
  Digraph g;
  g.grow_to(3);
  EXPECT_EQ(g.vertex_count(), 3u);
  g.grow_to(2);  // never shrinks
  EXPECT_EQ(g.vertex_count(), 3u);
  g.add_edge(VertexId(0), VertexId(2));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, ParallelEdgesAreKept) {
  Digraph g(2);
  g.add_edge(VertexId(0), VertexId(1));
  g.add_edge(VertexId(0), VertexId(1));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.successors(VertexId(0)).size(), 2u);
}

TEST(Scc, ParallelEdgesDoNotConfuseTarjan) {
  Digraph g(2);
  g.add_edge(VertexId(0), VertexId(1));
  g.add_edge(VertexId(0), VertexId(1));
  g.add_edge(VertexId(1), VertexId(0));
  const SccResult scc = tarjan_scc(g);
  EXPECT_EQ(scc.component_count, 1u);
}

TEST(Dot, ContainsVerticesAndEdges) {
  Digraph g(2);
  g.add_edge(VertexId(0), VertexId(1));
  const std::string dot =
      to_dot(g, "g", [](VertexId v) { return "v" + std::to_string(v.index()); });
  EXPECT_NE(dot.find("v0"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

}  // namespace
}  // namespace siwa::graph
