#include <gtest/gtest.h>

#include "core/triage.h"
#include "gen/patterns.h"
#include "gen/random_program.h"
#include "syncgraph/builder.h"
#include "lang/parser.h"
#include "wavesim/explorer.h"
#include "wavesim/shared.h"

namespace siwa::core {
namespace {

lang::Program parse(const char* source) {
  return lang::parse_and_check_or_throw(source);
}

TEST(Triage, CertifiesStaticallyWhenLadderSucceeds) {
  const TriageResult r = triage_program(parse(R"(
task a is begin send b.d; accept ack; end a;
task b is begin accept d; send a.ack; end b;
)"));
  EXPECT_EQ(r.verdict, TriageVerdict::CertifiedFree);
  EXPECT_TRUE(r.certified_statically);
}

TEST(Triage, EscalatesToPairMode) {
  // Without the constraint-4 filter, single-head mode keeps the
  // two-accepts/two-sends cycle; the ladder's pair rung certifies it
  // without ever touching the oracle.
  TriageOptions options;
  options.apply_constraint4 = false;
  const TriageResult r = triage_program(parse(R"(
task b is begin accept m; accept m; end b;
task c is begin send b.m; send b.m; end c;
)"),
                                        options);
  EXPECT_EQ(r.verdict, TriageVerdict::CertifiedFree);
  EXPECT_TRUE(r.certified_statically);
  EXPECT_EQ(r.decided_by, Algorithm::RefinedHeadPair);

  // The default ladder settles it even earlier: constraint 4 rescues the
  // single-head rung.
  const TriageResult with_c4 = triage_program(parse(R"(
task b is begin accept m; accept m; end b;
task c is begin send b.m; send b.m; end c;
)"));
  EXPECT_EQ(with_c4.verdict, TriageVerdict::CertifiedFree);
  EXPECT_EQ(with_c4.decided_by, Algorithm::RefinedSingle);
}

TEST(Triage, ConfirmsRealDeadlockWithTrace) {
  const TriageResult r = triage_program(parse(R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)"));
  EXPECT_EQ(r.verdict, TriageVerdict::ConfirmedDeadlock);
  EXPECT_FALSE(r.certified_statically);
  EXPECT_EQ(r.confirmation.status, WitnessStatus::Confirmed);
  EXPECT_FALSE(r.confirmation.wave.empty());
}

TEST(Triage, OracleRefutationYieldsCertifiedFree) {
  // The clean readers/writer lock defeats every static mode, but its state
  // space is small: the oracle settles it exactly.
  const TriageResult r = triage_program(gen::readers_writer(2, false));
  EXPECT_EQ(r.verdict, TriageVerdict::CertifiedFree);
  EXPECT_FALSE(r.certified_statically);
  EXPECT_EQ(r.confirmation.status, WitnessStatus::Refuted);
}

TEST(Triage, UndeterminedWhenOracleCapped) {
  TriageOptions options;
  options.oracle.max_states = 1;
  const TriageResult r =
      triage_program(gen::dining_philosophers(3, true), options);
  // With a crippled oracle the deadlocking philosophers stay undetermined —
  // the conservative reading is "possible deadlock".
  EXPECT_NE(r.verdict, TriageVerdict::CertifiedFree);
}

TEST(Triage, SharedConditionsUseExactOracle) {
  const TriageResult r = triage_program(parse(R"(
shared condition v;
task a is
begin
  if v then
    accept ping;
    send b.pong;
  end if;
end a;
task b is
begin
  if v then
    accept pong;
    send a.ping;
  end if;
end b;
)"));
  // Under either value of v the mutual wait IS feasible when v is true:
  // confirmed deadlock.
  EXPECT_EQ(r.verdict, TriageVerdict::ConfirmedDeadlock);
}

TEST(Triage, VerdictNames) {
  EXPECT_STREQ(triage_verdict_name(TriageVerdict::CertifiedFree),
               "certified deadlock-free");
  EXPECT_STREQ(triage_verdict_name(TriageVerdict::ConfirmedDeadlock),
               "confirmed deadlock");
}

// Triage is *exact* on the random corpus whenever the oracle completes:
// its verdict must equal the ground truth, with Undetermined only on caps.
class TriageExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriageExactness, MatchesGroundTruth) {
  gen::RandomProgramConfig config;
  config.tasks = 3;
  config.rendezvous_pairs = 5;
  config.branch_probability = 0.3;
  config.seed = GetParam();
  const lang::Program program = gen::random_program(config);

  wavesim::ExploreOptions explore;
  explore.max_states = 150'000;
  explore.collect_witness_trace = false;
  const auto truth =
      wavesim::WaveExplorer(sg::build_sync_graph(program), explore).explore();
  if (!truth.complete) GTEST_SKIP();

  TriageOptions options;
  options.oracle.max_states = 150'000;
  const TriageResult r = triage_program(program, options);
  if (truth.any_deadlock) {
    EXPECT_EQ(r.verdict, TriageVerdict::ConfirmedDeadlock) << GetParam();
  } else {
    EXPECT_EQ(r.verdict, TriageVerdict::CertifiedFree) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriageExactness,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace siwa::core
