// Randomized property suite: the safety and monotonicity guarantees of the
// paper, checked against the exhaustive wave-space oracle over seeded
// random programs.
//
//   P1 (safety): a reachable deadlocked wave implies every static detector
//       reports a possible deadlock (no false negatives, section 1).
//   P2 (monotonicity): naive-free => refined-free => head-pair-free (each
//       refinement only removes spurious cycles).
//   P3 (Lemma 3/4): the polynomial balance check never certifies a program
//       whose wave space contains a stall.
//   P4 (Theorem 1): every anomalous wave partitions into stall, deadlock
//       and transitively-coupled nodes.
//   P5 (Lemma 1): behaviors of the twice-unrolled program are behaviors of
//       the original.
//   P6: the balance DP agrees with exhaustive linearization enumeration in
//       the certifying direction.
#include <gtest/gtest.h>

#include <map>

#include "core/certifier.h"
#include "gen/random_program.h"
#include "stall/balance.h"
#include "syncgraph/builder.h"
#include "transform/linearize.h"
#include "transform/unroll.h"
#include "wavesim/explorer.h"

namespace siwa {
namespace {

struct CaseConfig {
  gen::RandomProgramConfig program;
  const char* family;
};

class RandomProgramProperties
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  static gen::RandomProgramConfig config_for(int family, std::uint64_t seed) {
    gen::RandomProgramConfig config;
    config.seed = seed;
    switch (family) {
      case 0:  // straight-line
        config.tasks = 3;
        config.rendezvous_pairs = 5;
        break;
      case 1:  // branching
        config.tasks = 3;
        config.rendezvous_pairs = 5;
        config.branch_probability = 0.35;
        break;
      case 2:  // branching + unmatched (stall fodder)
        config.tasks = 4;
        config.rendezvous_pairs = 5;
        config.unmatched_rendezvous = 1;
        config.branch_probability = 0.3;
        break;
      default:  // loops
        config.tasks = 3;
        config.rendezvous_pairs = 4;
        config.branch_probability = 0.2;
        config.loop_probability = 0.25;
        break;
    }
    return config;
  }

  static wavesim::ExploreResult explore(const lang::Program& p) {
    const sg::SyncGraph g = sg::build_sync_graph(p);
    wavesim::ExploreOptions options;
    options.max_states = 150'000;
    options.collect_witness_trace = false;
    options.max_reports = 64;
    return wavesim::WaveExplorer(g, options).explore();
  }
};

TEST_P(RandomProgramProperties, SafetyAndMonotonicity) {
  const auto [family, seed] = GetParam();
  const lang::Program program =
      gen::random_program(config_for(family, seed));

  const wavesim::ExploreResult truth = explore(program);
  if (!truth.complete) GTEST_SKIP() << "state space too large";

  std::map<core::Algorithm, bool> free;
  for (core::Algorithm algorithm :
       {core::Algorithm::Naive, core::Algorithm::RefinedSingle,
        core::Algorithm::RefinedHeadPair, core::Algorithm::RefinedHeadTail,
        core::Algorithm::RefinedHeadTailPairs}) {
    core::CertifyOptions options;
    options.algorithm = algorithm;
    free[algorithm] = certify_program(program, options).certified_free;
  }

  // P1: no false negatives, any mode.
  if (truth.any_deadlock) {
    for (const auto& [algorithm, is_free] : free)
      EXPECT_FALSE(is_free) << core::algorithm_name(algorithm)
                            << " missed a real deadlock, seed " << seed;
  }

  // P2: the refinement chain only removes spurious reports.
  if (free[core::Algorithm::Naive]) {
    EXPECT_TRUE(free[core::Algorithm::RefinedSingle]);
  }
  if (free[core::Algorithm::RefinedSingle]) {
    EXPECT_TRUE(free[core::Algorithm::RefinedHeadPair]);
  }

  // Constraint 4 stays safe too.
  core::CertifyOptions with_c4;
  with_c4.apply_constraint4 = true;
  const bool c4_free = certify_program(program, with_c4).certified_free;
  if (truth.any_deadlock) {
    EXPECT_FALSE(c4_free) << "constraint-4 unsound";
  }

  // P4: Theorem 1 partition on every collected anomaly.
  const sg::SyncGraph g = sg::build_sync_graph(program);
  for (const auto& report : truth.reports)
    EXPECT_TRUE(report.partition_covers_wave(g)) << "Theorem 1 violated";
}

TEST_P(RandomProgramProperties, StallBalanceIsSafe) {
  const auto [family, seed] = GetParam();
  const lang::Program program =
      gen::random_program(config_for(family, seed));
  const wavesim::ExploreResult truth = explore(program);
  if (!truth.complete) GTEST_SKIP() << "state space too large";

  const stall::BalanceVerdict verdict = stall::check_stall_balance(program);
  if (verdict.stall_free) {
    EXPECT_FALSE(truth.any_stall)
        << "balance certified a stalling program, seed " << seed;
  }
}

TEST_P(RandomProgramProperties, UnrolledBehaviorsAreOriginalBehaviors) {
  const auto [family, seed] = GetParam();
  const lang::Program program =
      gen::random_program(config_for(family, seed));
  if (!transform::has_loops(program)) GTEST_SKIP() << "no loops";

  const wavesim::ExploreResult original = explore(program);
  const wavesim::ExploreResult unrolled =
      explore(transform::unroll_loops_twice(program));
  if (!original.complete || !unrolled.complete)
    GTEST_SKIP() << "state space too large";

  // P5: executions of T(P) are executions of P with <= 2 iterations.
  if (unrolled.any_deadlock) {
    EXPECT_TRUE(original.any_deadlock);
  }
  if (unrolled.can_terminate) {
    EXPECT_TRUE(original.can_terminate);
  }
}

TEST_P(RandomProgramProperties, BalanceDpAgreesWithEnumeration) {
  const auto [family, seed] = GetParam();
  const lang::Program program =
      gen::random_program(config_for(family, seed));

  // Exhaustive Lemma 4 check: every consistent combination of per-task
  // linearizations must balance every signal type.
  transform::LinearizeOptions options;
  options.max_loop_iterations = 3;
  options.max_paths = 512;
  std::vector<transform::TaskLinearizations> per_task;
  for (const auto& task : program.tasks) {
    per_task.push_back(
        transform::enumerate_linearizations(program, task, options));
    if (!per_task.back().complete) GTEST_SKIP() << "too many paths";
    if (per_task.back().paths.empty()) GTEST_SKIP() << "infeasible task";
  }

  bool all_balanced = true;
  std::vector<std::size_t> choice(per_task.size(), 0);
  while (true) {
    // Check shared-condition consistency across the chosen paths.
    std::map<Symbol, bool> assignment;
    bool consistent = true;
    for (std::size_t t = 0; t < per_task.size() && consistent; ++t) {
      for (const auto& [cond, value] :
           per_task[t].paths[choice[t]].shared_assignment) {
        auto [it, inserted] = assignment.emplace(cond, value);
        if (!inserted && it->second != value) consistent = false;
      }
    }
    if (consistent) {
      std::map<std::pair<Symbol, Symbol>, std::int64_t> net;
      for (std::size_t t = 0; t < per_task.size(); ++t)
        for (const auto& r : per_task[t].paths[choice[t]].rendezvous)
          net[{r.target, r.message}] += r.is_send ? 1 : -1;
      for (const auto& [sig, value] : net)
        if (value != 0) all_balanced = false;
    }
    // Next combination.
    std::size_t t = 0;
    while (t < choice.size() && ++choice[t] == per_task[t].paths.size()) {
      choice[t] = 0;
      ++t;
    }
    if (t == choice.size()) break;
    if (!all_balanced) break;
  }

  const stall::BalanceVerdict dp = stall::check_stall_balance(program);
  // Certifying direction: the DP may be conservative, never unsound. For
  // loop-bounded enumeration the comparison only binds when the program is
  // loop-free (loops widen the DP by design).
  if (dp.stall_free && !transform::has_loops(program)) {
    EXPECT_TRUE(all_balanced) << "DP certified an unbalanced program, seed "
                              << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, RandomProgramProperties,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Range<std::uint64_t>(1, 26)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
      return "family" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace siwa
