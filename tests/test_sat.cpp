// Appendix A gadget tests: the Theorem 2 and Theorem 3 constructions and
// the orderings / cycle structure they are proved to have.
#include <gtest/gtest.h>

#include "core/certifier.h"
#include "core/coexec.h"
#include "core/precedence.h"
#include "core/refined_detector.h"
#include "gen/cnf.h"
#include "gen/sat_reduction.h"
#include "lang/sema.h"
#include "syncgraph/builder.h"
#include "syncgraph/clg.h"

namespace siwa::gen {
namespace {

Cnf example_sat() {
  // (a + b + ~c)(a + c + ~d) from Figure 6 — satisfiable.
  return *parse_dimacs("p cnf 4 2\n1 2 -3 0\n1 3 -4 0\n");
}

Cnf example_unsat() {
  std::string all = "p cnf 3 8\n";
  for (int a : {1, -1})
    for (int b : {2, -2})
      for (int c : {3, -3})
        all += std::to_string(a) + " " + std::to_string(b) + " " +
               std::to_string(c) + " 0\n";
  return *parse_dimacs(all);
}

TEST(Theorem2, GadgetIsAValidProgram) {
  const lang::Program p = build_theorem2_program(example_sat());
  DiagnosticSink sink;
  EXPECT_TRUE(lang::check_program(p, sink)) << sink.to_string();
  // 6 literal tasks + 6 anti-ordering tasks + ordering tasks for c and d
  // (the negated variables).
  EXPECT_EQ(p.tasks.size(), 6u + 6u + 2u);
  const auto g = sg::build_sync_graph(p);
  EXPECT_TRUE(g.validate(true).empty());
}

TEST(Theorem2, GadgetSizeLinearInClauses) {
  for (int m : {2, 4, 8}) {
    const Cnf cnf = random_3cnf(6, m, 11);
    const auto g = sg::build_sync_graph(build_theorem2_program(cnf));
    // Per literal task: 1 top + 3 signaling + <=1 order-send, plus 1
    // anti-ordering node; ordering tasks add one node per occurrence.
    EXPECT_LE(g.node_count(), 2u + static_cast<std::size_t>(m) * 3u * 7u);
    EXPECT_GE(g.node_count(), 2u + static_cast<std::size_t>(m) * 3u * 4u);
  }
}

TEST(Theorem2, DerivedOrderingsMatchTheProof) {
  // Positive tops precede negative tops of the same variable — and no two
  // tops are ordered otherwise. This is the property the proof establishes
  // and the precedence engine must rediscover (it needs rules R3+R4).
  const Cnf cnf = example_sat();
  const auto g = sg::build_sync_graph(build_theorem2_program(cnf));
  const core::Precedence prec(g);

  const std::size_t m = cnf.clauses.size();
  for (std::size_t i = 0; i < m; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (std::size_t i2 = 0; i2 < m; ++i2) {
        for (int j2 = 0; j2 < 3; ++j2) {
          if (i == i2 && j == j2) continue;
          const Literal a = cnf.clauses[i].lits[j];
          const Literal b = cnf.clauses[i2].lits[j2];
          const NodeId ta = find_literal_top(g, static_cast<int>(i), j);
          const NodeId tb = find_literal_top(g, static_cast<int>(i2), j2);
          const bool expect_ordered =
              a.variable == b.variable && !a.negated && b.negated;
          EXPECT_EQ(prec.precedes(ta, tb), expect_ordered)
              << g.describe(ta) << " vs " << g.describe(tb);
        }
      }
    }
  }
}

TEST(Theorem2, ExactPrecedencesAgreeWithDerived) {
  const Cnf cnf = example_sat();
  const auto g = sg::build_sync_graph(build_theorem2_program(cnf));
  const core::Precedence derived(g);
  for (auto [a, b] : exact_gadget_precedences(cnf, g))
    EXPECT_TRUE(derived.precedes(a, b))
        << g.describe(a) << " should precede " << g.describe(b);
}

TEST(Theorem2, ConsistentChoiceMatchesSatisfiability) {
  EXPECT_TRUE(exact_consistent_choice_exists(example_sat()));
  EXPECT_FALSE(exact_consistent_choice_exists(example_unsat()));
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Cnf cnf = random_3cnf(5, 12, seed);
    EXPECT_EQ(exact_consistent_choice_exists(cnf),
              brute_force_satisfiable(cnf))
        << to_dimacs(cnf);
  }
}

TEST(Theorem2, SatisfiableGadgetHasConstrainedCycle) {
  // The refined detector (with its sound approximations) must report a
  // possible deadlock on a satisfiable gadget: a genuine constraint-valid
  // cycle exists by the theorem.
  const auto g = sg::build_sync_graph(build_theorem2_program(example_sat()));
  core::CertifyOptions options;
  options.algorithm = core::Algorithm::RefinedSingle;
  EXPECT_FALSE(core::certify_graph(g, options).certified_free);
}

TEST(Theorem2, UnsatGadgetStillConservativelyFlagged) {
  // NP-hardness (Theorem 2) means no polynomial sound algorithm can
  // certify all unsat gadgets free; ours conservatively reports them.
  // This pins the expected (imprecise) behavior the paper predicts.
  const auto g =
      sg::build_sync_graph(build_theorem2_program(example_unsat()));
  core::CertifyOptions options;
  options.algorithm = core::Algorithm::RefinedSingle;
  EXPECT_FALSE(core::certify_graph(g, options).certified_free);
}

TEST(Theorem3, RawGraphValidatesAndHasCrossEdges) {
  const Cnf cnf = example_sat();
  const auto g = build_theorem3_graph(cnf);
  EXPECT_TRUE(g.validate(false).empty());
  // a appears positively in both clauses; ~c in clause 1 and c in clause 2
  // are complementary: their tops carry an explicit (same-sign) sync edge.
  const NodeId c_neg = find_literal_top(g, 0, 2);  // ~c in clause 1
  const NodeId c_pos = find_literal_top(g, 1, 1);  // c in clause 2
  EXPECT_TRUE(g.has_sync_edge(c_neg, c_pos));
  const NodeId a1 = find_literal_top(g, 0, 0);
  const NodeId a2 = find_literal_top(g, 1, 0);
  EXPECT_FALSE(g.has_sync_edge(a1, a2));  // same sign: no edge
}

TEST(Theorem3, ExplicitEdgesCannotFormConstraint1Cycles) {
  // The proof notes the added top-top sync edges cannot create new valid
  // cycles: entering and leaving a top through sync edges violates 1b.
  // With one single-literal-ish clause pair sharing a variable both ways,
  // the CLG must still respect the split-node discipline.
  const Cnf cnf = *parse_dimacs("p cnf 3 2\n1 2 3 0\n-1 -2 -3 0\n");
  const auto g = build_theorem3_graph(cnf);
  const sg::Clg clg(g);
  // Cycles exist (through the signaling groups) — but never two
  // consecutive sync edges: every sync edge lands on an _i node whose only
  // out-edges are control edges by construction.
  for (std::size_t v = 0; v < clg.node_count(); ++v) {
    for (VertexId w : clg.graph().successors(VertexId(v))) {
      if (!clg.is_sync_edge(ClgNodeId(v), ClgNodeId(w.index()))) continue;
      for (VertexId x : clg.graph().successors(w)) {
        EXPECT_FALSE(
            clg.is_sync_edge(ClgNodeId(w.index()), ClgNodeId(x.index())));
      }
    }
  }
}

TEST(Theorem3, GadgetFlaggedByDetectors) {
  const auto g = build_theorem3_graph(example_sat());
  core::CertifyOptions naive;
  naive.algorithm = core::Algorithm::Naive;
  EXPECT_FALSE(core::certify_graph(g, naive).certified_free);
  core::CertifyOptions refined;
  EXPECT_FALSE(core::certify_graph(g, refined).certified_free);
}

TEST(Theorem3, SizeLinearInClauses) {
  for (int m : {2, 4, 8}) {
    const Cnf cnf = random_3cnf(6, m, 13);
    const auto g = build_theorem3_graph(cnf);
    // Exactly 1 top + 3 sends per literal task.
    EXPECT_EQ(g.node_count(), 2u + static_cast<std::size_t>(m) * 3u * 4u);
  }
}

}  // namespace
}  // namespace siwa::gen
