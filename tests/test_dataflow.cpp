// Guard-feasibility dataflow engine (dataflow/guard_feasibility.h): lattice
// unit tests, loop-condition pinning, contradictory nesting, subsumption of
// the syntactic guard conflict, the conservativeness property against the
// per-assignment pruned graphs, end-to-end precision/safety of
// refined+dataflow against the assignment-exact oracle, and thread-count
// determinism of dataflow-enabled certification.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "core/analysis_context.h"
#include "core/certifier.h"
#include "dataflow/guard_feasibility.h"
#include "gen/random_program.h"
#include "lang/parser.h"
#include "syncgraph/builder.h"
#include "syncgraph/serialize.h"
#include "transform/prune.h"
#include "wavesim/shared.h"

namespace siwa {
namespace {

using dataflow::GuardFeasibility;
using Value = dataflow::GuardFeasibility::Value;

lang::Program parse(const char* source) {
  return lang::parse_and_check_or_throw(source);
}

NodeId node_of(const sg::SyncGraph& g, const std::string& task, std::size_t n) {
  for (std::size_t t = 0; t < g.task_count(); ++t)
    if (g.task_name(TaskId(t)) == task) return g.nodes_of_task(TaskId(t))[n];
  ADD_FAILURE() << "no task " << task;
  return NodeId::invalid();
}

// The crafted flip program: a classic ping-pong deadlock cycle whose every
// rendezvous sits in a shared-condition loop body. The loop condition is
// pinned false under all-tasks-terminate, so the cycle is statically
// infeasible — the guard-blind refined detector reports it, refined+dataflow
// and the assignment-exact oracle both certify the program free.
const char* kLoopCycleSource = R"(shared condition c;
task a is
begin
  while c loop
    accept ping;
    send b.pong;
  end loop;
end a;
task b is
begin
  while c loop
    accept pong;
    send a.ping;
  end loop;
end b;
)";

TEST(Dataflow, NoSharedConditionsShortCircuits) {
  const sg::SyncGraph g = sg::build_sync_graph(parse(R"(
task a is begin send b.d; accept ack; end a;
task b is begin accept d; send a.ack; end b;
)"));
  const GuardFeasibility feas(g);
  EXPECT_FALSE(feas.has_conditions());
  EXPECT_EQ(feas.condition_count(), 0u);
  EXPECT_EQ(feas.infeasible_count(), 0u);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    EXPECT_TRUE(feas.feasible(NodeId(i)));
    EXPECT_FALSE(feas.constrained(NodeId(i)));
  }
  EXPECT_TRUE(feas.coexec_possible(node_of(g, "a", 0), node_of(g, "b", 0)));
}

TEST(Dataflow, GuardArmsPinValues) {
  const sg::SyncGraph g = sg::build_sync_graph(parse(R"(
shared condition v;
task t is
begin
  if v then
    accept m1;
  else
    accept m2;
  end if;
  accept m3;
end t;
task u is begin send t.m1; send t.m2; send t.m3; end u;
)"));
  const GuardFeasibility feas(g);
  ASSERT_TRUE(feas.has_conditions());
  EXPECT_EQ(feas.condition_count(), 1u);

  const NodeId m1 = node_of(g, "t", 0);
  const NodeId m2 = node_of(g, "t", 1);
  const NodeId m3 = node_of(g, "t", 2);
  const Symbol v = g.node(m1).guards.at(0).cond;

  EXPECT_EQ(feas.value(m1, v), Value::True);
  EXPECT_EQ(feas.value(m2, v), Value::False);
  EXPECT_EQ(feas.value(m3, v), Value::Top);  // arms rejoin: both values flow

  EXPECT_TRUE(feas.feasible(m1));
  EXPECT_TRUE(feas.feasible(m2));
  EXPECT_TRUE(feas.feasible(m3));
  EXPECT_EQ(feas.infeasible_count(), 0u);

  EXPECT_TRUE(feas.constrained(m1));
  EXPECT_TRUE(feas.constrained(m2));
  EXPECT_FALSE(feas.constrained(m3));

  // Opposite arms can never co-execute; either arm pairs with the join.
  EXPECT_FALSE(feas.compatible(m1, m2));
  EXPECT_FALSE(feas.coexec_possible(m1, m2));
  EXPECT_TRUE(feas.compatible(m1, m3));
  EXPECT_TRUE(feas.compatible(m2, m3));
}

TEST(Dataflow, LoopConditionPinnedFalse) {
  const sg::SyncGraph g = sg::build_sync_graph(parse(R"(
shared condition w;
task t is
begin
  while w loop
    accept inside;
  end loop;
  accept after;
end t;
task u is begin send t.inside; send t.after; end u;
)"));
  ASSERT_EQ(g.loop_conditions().size(), 1u);
  const GuardFeasibility feas(g);
  ASSERT_TRUE(feas.has_conditions());

  const NodeId inside = node_of(g, "t", 0);
  const NodeId after = node_of(g, "t", 1);
  const Symbol w = g.loop_conditions()[0];

  // All tasks terminate, so a fixed-per-run loop condition must be false;
  // the loop body is dead under every feasible valuation.
  EXPECT_FALSE(feas.feasible(inside));
  EXPECT_TRUE(feas.feasible(after));
  EXPECT_EQ(feas.value(after, w), Value::False);
  EXPECT_EQ(feas.infeasible_count(), 1u);
  const std::vector<NodeId> dead = feas.infeasible_nodes();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], inside);

  // The unguarded sender is feasible but can never pair with the dead body.
  const NodeId send_inside = node_of(g, "u", 0);
  EXPECT_TRUE(feas.feasible(send_inside));
  EXPECT_FALSE(feas.coexec_possible(send_inside, inside));
}

TEST(Dataflow, ContradictoryNestingIsInfeasible) {
  const sg::SyncGraph g = sg::build_sync_graph(parse(R"(
shared condition c;
task t is
begin
  if c then
    accept live;
  else
    if c then
      accept dead;
    end if;
  end if;
end t;
task u is begin send t.live; send t.dead; end u;
)"));
  const GuardFeasibility feas(g);
  const NodeId live = node_of(g, "t", 0);
  const NodeId dead = node_of(g, "t", 1);

  ASSERT_EQ(g.node(dead).guards.size(), 2u);  // both arms recorded
  EXPECT_TRUE(feas.contradictory_guards(dead));
  EXPECT_FALSE(feas.contradictory_guards(live));
  EXPECT_FALSE(feas.feasible(dead));
  EXPECT_TRUE(feas.feasible(live));
}

TEST(Dataflow, ConflictSubsumesSyntacticGuardConflict) {
  // Wherever the syntactic pairwise check proves a conflict, the dataflow
  // must agree (it may prove strictly more) — this is what lets CoExec swap
  // one for the other without losing precision.
  std::size_t conflicting_pairs = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    gen::RandomProgramConfig config;
    config.tasks = 2 + seed % 3;
    config.rendezvous_pairs = 4;
    config.branch_probability = 0.5;
    config.shared_conditions = 2;
    config.seed = seed;
    const sg::SyncGraph g =
        sg::build_sync_graph(gen::random_program(config));
    const GuardFeasibility feas(g);
    if (!feas.has_conditions()) continue;
    for (std::size_t i = 2; i < g.node_count(); ++i) {
      for (std::size_t j = i + 1; j < g.node_count(); ++j) {
        const NodeId a(i);
        const NodeId b(j);
        if (!g.is_rendezvous(a) || !g.is_rendezvous(b)) continue;
        if (!g.guards_conflict(a, b)) continue;
        ++conflicting_pairs;
        EXPECT_FALSE(feas.coexec_possible(a, b))
            << "seed " << seed << ": syntactic conflict " << g.describe(a)
            << " / " << g.describe(b) << " not proven by the dataflow";
      }
    }
  }
  EXPECT_GT(conflicting_pairs, 0u) << "corpus produced no guard conflicts";
}

// Stamps each statement with a unique source line so (line, column, sign)
// becomes an exact node identity. The random generator leaves every loc at
// 0:0, and prune_shared copies statements wholesale, so stamped locs survive
// into both the original and the pruned sync graphs.
void stamp_unique_locs(std::vector<lang::Stmt>& stmts, int& next_line) {
  for (lang::Stmt& s : stmts) {
    s.loc.line = next_line++;
    stamp_unique_locs(s.body, next_line);
    stamp_unique_locs(s.orelse, next_line);
  }
}

TEST(Dataflow, ConservativeNeverPrunesAssignmentReachableNodes) {
  // Soundness property: a node the dataflow proves infeasible must be absent
  // from the pruned program of EVERY feasible shared-condition assignment.
  // (Presence in a pruned graph over-approximates execution, so this is the
  // strictest structural check available.) Nodes match by source location
  // and sign, which the pruner preserves.
  std::size_t infeasible_seen = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    gen::RandomProgramConfig config;
    config.tasks = 2 + seed % 3;
    config.rendezvous_pairs = 4 + seed % 3;
    config.branch_probability = 0.4;
    config.loop_probability = 0.25;
    config.shared_conditions = 2;
    config.seed = 100 + seed;
    lang::Program program = gen::random_program(config);
    int next_line = 1;
    for (lang::TaskDecl& task : program.tasks)
      stamp_unique_locs(task.body, next_line);
    const sg::SyncGraph g = sg::build_sync_graph(program);
    const GuardFeasibility feas(g);
    const std::vector<NodeId> dead = feas.infeasible_nodes();
    if (dead.empty()) continue;
    infeasible_seen += dead.size();

    const std::vector<Symbol> conds = transform::used_shared_conditions(program);
    ASSERT_LE(conds.size(), 4u);
    for (std::size_t bits = 0; bits < (1u << conds.size()); ++bits) {
      std::map<Symbol, bool> assignment;
      for (std::size_t k = 0; k < conds.size(); ++k)
        assignment[conds[k]] = ((bits >> k) & 1u) != 0;
      const auto pruned = transform::prune_shared(program, assignment);
      if (!pruned.has_value()) continue;  // infeasible assignment
      const sg::SyncGraph pg = sg::build_sync_graph(*pruned);
      std::set<std::tuple<int, int, int>> present;
      for (std::size_t i = 2; i < pg.node_count(); ++i) {
        const sg::SyncNode& n = pg.node(NodeId(i));
        present.insert({n.loc.line, n.loc.column,
                        n.sign == sg::Sign::Plus ? 1 : 0});
      }
      for (NodeId d : dead) {
        const sg::SyncNode& n = g.node(d);
        EXPECT_EQ(present.count({n.loc.line, n.loc.column,
                                 n.sign == sg::Sign::Plus ? 1 : 0}),
                  0u)
            << "seed " << config.seed << " assignment " << bits << ": "
            << g.describe(d)
            << " was proven infeasible but survives pruning";
      }
    }
  }
  EXPECT_GT(infeasible_seen, 0u) << "corpus produced no infeasible nodes";
}

TEST(Dataflow, LoopCycleFlipsToCertifiedFree) {
  const lang::Program program = parse(kLoopCycleSource);

  core::CertifyOptions blind;
  const core::CertifyResult without = core::certify_program(program, blind);
  EXPECT_FALSE(without.certified_free)
      << "guard-blind refined must report the syntactic cycle";

  core::CertifyOptions with = blind;
  with.use_guard_dataflow = true;
  const core::CertifyResult refined = core::certify_program(program, with);
  EXPECT_TRUE(refined.certified_free);
  EXPECT_GT(refined.stats.infeasible_nodes, 0u);
  EXPECT_FALSE(refined.infeasibility_facts.empty());

  wavesim::ExploreOptions explore;
  explore.max_states = 100'000;
  const wavesim::SharedExploreResult oracle =
      wavesim::explore_shared(program, explore);
  ASSERT_TRUE(oracle.combined.complete);
  EXPECT_FALSE(oracle.combined.any_deadlock)
      << "the oracle must agree the cycle is infeasible";
}

TEST(Dataflow, RefinedPlusDataflowSafeAndNoLessPreciseOnCorpus) {
  // Over a shared-condition corpus with assignment-exact ground truth:
  // the dataflow may only prune (its reports are a subset of refined's),
  // introduces zero false negatives, and strictly improves oracle agreement
  // thanks to at least the crafted loop-cycle program.
  std::vector<lang::Program> corpus;
  corpus.push_back(parse(kLoopCycleSource));
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    gen::RandomProgramConfig config;
    config.tasks = 2 + seed % 3;
    config.rendezvous_pairs = 3 + seed % 3;
    config.branch_probability = 0.35;
    config.loop_probability = 0.2;
    config.shared_conditions = 2;
    config.seed = 500 + seed;
    corpus.push_back(gen::random_program(config));
  }

  std::size_t agree_refined = 0;
  std::size_t agree_dataflow = 0;
  std::size_t graded = 0;
  for (const lang::Program& program : corpus) {
    wavesim::ExploreOptions explore;
    explore.max_states = 100'000;
    explore.collect_witness_trace = false;
    const wavesim::SharedExploreResult oracle =
        wavesim::explore_shared(program, explore);
    if (!oracle.combined.complete || oracle.condition_cap_hit) continue;
    ++graded;
    const bool truth_deadlock = oracle.combined.any_deadlock;

    const bool refined_free =
        core::certify_program(program, {}).certified_free;
    core::CertifyOptions with;
    with.use_guard_dataflow = true;
    const bool dataflow_free =
        core::certify_program(program, with).certified_free;

    // Pruning-only: dataflow can only turn reports into certifications.
    if (refined_free) EXPECT_TRUE(dataflow_free);
    // Safety: never certify a real deadlock free.
    if (truth_deadlock) EXPECT_FALSE(dataflow_free);

    if (refined_free == !truth_deadlock) ++agree_refined;
    if (dataflow_free == !truth_deadlock) ++agree_dataflow;
  }
  EXPECT_GT(graded, 10u);
  EXPECT_GT(agree_dataflow, agree_refined)
      << "dataflow must strictly improve oracle agreement on this corpus";
}

TEST(Dataflow, DeterministicAcrossThreadCounts) {
  std::vector<lang::Program> corpus;
  corpus.push_back(parse(kLoopCycleSource));
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    gen::RandomProgramConfig config;
    config.tasks = 3;
    config.rendezvous_pairs = 5;
    config.branch_probability = 0.35;
    config.shared_conditions = 2;
    config.seed = 900 + seed;
    corpus.push_back(gen::random_program(config));
  }

  for (const lang::Program& program : corpus) {
    core::CertifyOptions base;
    base.use_guard_dataflow = true;
    base.algorithm = core::Algorithm::RefinedHeadTail;
    const core::CertifyResult serial = core::certify_program(program, base);
    for (std::size_t threads : {2u, 4u, 8u}) {
      core::CertifyOptions opt = base;
      opt.parallel.threads = threads;
      const core::CertifyResult parallel =
          core::certify_program(program, opt);
      EXPECT_EQ(parallel.certified_free, serial.certified_free);
      EXPECT_EQ(parallel.witness_nodes, serial.witness_nodes);
      EXPECT_EQ(parallel.witness, serial.witness);
      EXPECT_EQ(parallel.infeasibility_facts, serial.infeasibility_facts);
      EXPECT_EQ(parallel.stats.infeasible_nodes, serial.stats.infeasible_nodes);
      EXPECT_EQ(parallel.stats.hypotheses_tested,
                serial.stats.hypotheses_tested);
    }
  }
}

// ---- fast guards_conflict vs the reference nested scan ----

bool reference_guards_conflict(const sg::SyncGraph& g, NodeId a, NodeId b) {
  for (const sg::Guard& ga : g.node(a).guards)
    for (const sg::Guard& gb : g.node(b).guards)
      if (ga.cond == gb.cond && ga.arm != gb.arm) return true;
  return false;
}

TEST(GuardsConflictFast, MatchesReferenceOnRandomCorpus) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    gen::RandomProgramConfig config;
    config.tasks = 2 + seed % 3;
    config.rendezvous_pairs = 5;
    config.branch_probability = 0.5;
    config.shared_conditions = 3;
    config.seed = seed;
    const sg::SyncGraph g =
        sg::build_sync_graph(gen::random_program(config));
    for (std::size_t i = 2; i < g.node_count(); ++i)
      for (std::size_t j = 2; j < g.node_count(); ++j)
        EXPECT_EQ(g.guards_conflict(NodeId(i), NodeId(j)),
                  reference_guards_conflict(g, NodeId(i), NodeId(j)))
            << "seed " << seed << " nodes " << i << "/" << j;
  }
}

TEST(GuardsConflictFast, NodeCarryingBothArmsConflictsWithEitherArm) {
  // A node under contradictory nesting carries both arms of one condition;
  // the packed merge-scan must still see the conflict against a plain
  // single-arm node (a naive two-pointer walk can step past it).
  const auto parsed = sg::parse_sync_graph(R"(# gadget
task t
task u
node 2 t t.m - guard c=0 guard c=1
node 3 u t.m + guard c=0
node 4 u t.m + guard c=1
entry t 2
entry u 3
cedge b 2
cedge b 3
cedge 2 e
cedge 3 4
cedge 4 e
)");
  ASSERT_TRUE(parsed.has_value());
  const NodeId both(2), arm0(3), arm1(4);
  EXPECT_TRUE(parsed->guards_conflict(both, arm0));
  EXPECT_TRUE(parsed->guards_conflict(both, arm1));
  EXPECT_TRUE(parsed->guards_conflict(arm0, arm1));
  EXPECT_TRUE(reference_guards_conflict(*parsed, both, arm0));
}

}  // namespace
}  // namespace siwa
