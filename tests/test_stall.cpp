#include <gtest/gtest.h>

#include "gen/patterns.h"
#include "lang/parser.h"
#include "stall/balance.h"
#include "stall/codependent.h"
#include "stall/lemma3.h"
#include "transform/merge.h"

namespace siwa::stall {
namespace {

lang::Program parse(const char* source) {
  return lang::parse_and_check_or_throw(source);
}

TEST(Lemma3, BalancedStraightLineIsStallFree) {
  const auto p = parse(R"(
task a is begin send b.m; send b.m; end a;
task b is begin accept m; accept m; end b;
)");
  const Lemma3Verdict v = check_lemma3(p);
  EXPECT_TRUE(v.applicable);
  EXPECT_TRUE(v.stall_free);
  ASSERT_EQ(v.counts.size(), 1u);
  EXPECT_EQ(v.counts[0].sends, 2u);
  EXPECT_EQ(v.counts[0].accepts, 2u);
}

TEST(Lemma3, UnbalancedCountsDetected) {
  const auto p = parse(R"(
task a is begin send b.m; end a;
task b is begin accept m; accept m; end b;
)");
  const Lemma3Verdict v = check_lemma3(p);
  EXPECT_TRUE(v.applicable);
  EXPECT_FALSE(v.stall_free);
}

TEST(Lemma3, NotApplicableWithBranches) {
  const auto p = parse(R"(
task a is begin if c then send b.m; end if; end a;
task b is begin accept m; end b;
)");
  EXPECT_FALSE(check_lemma3(p).applicable);
  EXPECT_FALSE(is_straight_line(p));
}

TEST(Lemma3, PatternsAreBalanced) {
  for (const auto& p :
       {gen::pipeline(3, 2), gen::barrier(3), gen::token_ring(4, false),
        gen::dining_philosophers(3, false), gen::client_server(2, false)}) {
    const Lemma3Verdict v = check_lemma3(p);
    EXPECT_TRUE(v.applicable);
    EXPECT_TRUE(v.stall_free);
  }
}

TEST(Balance, BalancedStraightLine) {
  const auto p = parse(R"(
task a is begin send b.m; end a;
task b is begin accept m; end b;
)");
  EXPECT_TRUE(check_stall_balance(p).stall_free);
}

TEST(Balance, UnbalancedReported) {
  const auto p = parse(R"(
task a is begin send b.m; end a;
task b is begin accept m; accept m; end b;
)");
  const BalanceVerdict v = check_stall_balance(p);
  EXPECT_FALSE(v.stall_free);
  ASSERT_EQ(v.issues.size(), 1u);
  EXPECT_NE(v.issues[0].description.find("net count"), std::string::npos);
}

TEST(Balance, IndependentConditionalMayStall) {
  // Lemma 4: the else path leaves the accept unmatched.
  const auto p = parse(R"(
task a is begin if c then send b.m; end if; end a;
task b is begin accept m; end b;
)");
  EXPECT_FALSE(check_stall_balance(p).stall_free);
}

TEST(Balance, BothArmsSameTypeIsExact) {
  // Figure 5(b): a rendezvous of the same type on both arms contributes an
  // exact +1 regardless of the branch taken.
  const auto p = parse(R"(
task a is
begin
  if c then
    send b.m;
  else
    send b.m;
  end if;
end a;
task b is begin accept m; end b;
)");
  EXPECT_TRUE(check_stall_balance(p).stall_free);
}

TEST(Balance, SharedConditionCancelsAcrossTasks) {
  // Figure 5(d): send and accept both guarded by the same encapsulated
  // condition cancel exactly.
  const auto p = parse(R"(
shared condition v;
task a is begin if v then send b.m; end if; end a;
task b is begin if v then accept m; end if; end b;
)");
  EXPECT_TRUE(check_stall_balance(p).stall_free);
}

TEST(Balance, SharedConditionMismatchedArmsStall) {
  // Send on the then-arm but accept on the else-arm: no assignment
  // balances; coefficients add instead of cancelling.
  const auto p = parse(R"(
shared condition v;
task a is begin if v then send b.m; end if; end a;
task b is begin if v then null; else accept m; end if; end b;
)");
  const BalanceVerdict v = check_stall_balance(p);
  EXPECT_FALSE(v.stall_free);
}

TEST(Balance, NonSharedConditionDoesNotCancel) {
  // Same shape but with independent conditions: each task flips its own
  // coin, so the counts can disagree.
  const auto p = parse(R"(
task a is begin if c1 then send b.m; end if; end a;
task b is begin if c2 then accept m; end if; end b;
)");
  EXPECT_FALSE(check_stall_balance(p).stall_free);
}

TEST(Balance, ZeroNetLoopIsHarmless) {
  const auto p = parse(R"(
task a is
begin
  while w loop
    send b.m;
    accept r;
  end loop;
end a;
task b is
begin
  while w2 loop
    accept m;
    send a.r;
  end loop;
end b;
)");
  // Each loop body nets zero for... the body nets +1/-1 per signal, which
  // is NOT zero: iteration counts may differ between tasks.
  EXPECT_FALSE(check_stall_balance(p).stall_free);
}

TEST(Balance, SelfContainedLoopBodyPasses) {
  // A loop whose body is internally balanced per signal would require the
  // partner counts inside the same task; here the signal both starts and
  // ends within one task pair inside a shared iteration bound is not
  // expressible, so the only zero-net loop is one with no rendezvous.
  const auto p = parse(R"(
task a is
begin
  while w loop
    null;
  end loop;
  send b.m;
end a;
task b is begin accept m; end b;
)");
  EXPECT_TRUE(check_stall_balance(p).stall_free);
}

TEST(Balance, EqualCountArmsAreExactAndMergeAgrees) {
  // Both arms carry the same rendezvous multiset in different orders; the
  // per-signal interval hull is already exact here (the Figure 5(c) merge
  // transform normalizes the source but cannot change the verdict).
  const auto p = parse(R"(
task a is
begin
  if c then
    send b.m;
    send b.k;
  else
    send b.k;
    send b.m;
  end if;
end a;
task b is begin accept m; accept k; end b;
)");
  EXPECT_TRUE(check_stall_balance(p).stall_free);
  // The condition is independent, so the merge transform must not split
  // the permuted arms (that would decorrelate the residues); the program
  // passes through unchanged and the verdict is stable.
  transform::MergeStats stats;
  const lang::Program merged = transform::merge_branch_rendezvous(p, &stats);
  EXPECT_EQ(stats.merged_rendezvous, 0u);
  EXPECT_TRUE(check_stall_balance(merged).stall_free);
}

TEST(Codependent, DetectsMatchedPairs) {
  const auto p = parse(R"(
shared condition v;
task a is begin if v then send b.m; end if; end a;
task b is begin if v then accept m; end if; end b;
)");
  const auto pairs = detect_codependent_pairs(p);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0].then_arm);
  EXPECT_EQ(p.name_of(pairs[0].message), "m");
  EXPECT_EQ(p.name_of(pairs[0].sender_task), "a");
  EXPECT_EQ(p.name_of(pairs[0].receiver_task), "b");
}

TEST(Codependent, IgnoresNonSharedConditions) {
  const auto p = parse(R"(
task a is begin if c then send b.m; end if; end a;
task b is begin if c then accept m; end if; end b;
)");
  EXPECT_TRUE(detect_codependent_pairs(p).empty());
}

TEST(Codependent, ElseArmMatchesElseArmOnly) {
  const auto p = parse(R"(
shared condition v;
task a is begin if v then send b.m; end if; end a;
task b is begin if v then null; else accept m; end if; end b;
)");
  EXPECT_TRUE(detect_codependent_pairs(p).empty());
}

TEST(Codependent, FactoringHoistsBothSides) {
  const auto p = parse(R"(
shared condition v;
task a is begin if v then send b.m; end if; end a;
task b is begin if v then accept m; end if; end b;
)");
  std::size_t factored = 0;
  const lang::Program q = factor_codependent(p, &factored);
  EXPECT_EQ(factored, 2u);
  // Both rendezvous are now unconditional; Lemma 3 applies after dropping
  // the empty conditionals... the conditionals remain but carry no
  // rendezvous, so the balance check certifies.
  EXPECT_TRUE(check_stall_balance(q).stall_free);
  ASSERT_FALSE(q.tasks[0].body.empty());
  EXPECT_EQ(q.tasks[0].body[0].kind, lang::StmtKind::Send);
}

TEST(Codependent, UnmatchedExtrasStayConditional) {
  // Two sends, one accept under the same shared condition: one pair
  // factors, the surplus send keeps the imbalance visible.
  const auto p = parse(R"(
shared condition v;
task a is begin if v then send b.m; send b.m; end if; end a;
task b is begin if v then accept m; end if; end b;
)");
  std::size_t factored = 0;
  const lang::Program q = factor_codependent(p, &factored);
  EXPECT_EQ(factored, 2u);  // one send + one accept
  EXPECT_FALSE(check_stall_balance(q).stall_free);
}

}  // namespace
}  // namespace siwa::stall
