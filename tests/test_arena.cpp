// support::Arena: the bump allocator backing all per-certify scratch.
//
// Beyond the unit properties (alignment, oversized allocations, scoped
// rewind), the suite pins the performance contract the refined detector
// relies on: after a warm-up pass, repeated scoped bursts acquire zero new
// heap blocks, and a certify run over a small end-to-end corpus works with
// arena-backed MarkedSearch scratch under every hypothesis mode — which is
// exactly what the ASan/UBSan CI builds sweep for lifetime bugs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "core/certifier.h"
#include "core/refined_detector.h"
#include "lang/parser.h"
#include "support/arena.h"
#include "syncgraph/builder.h"
#include "syncgraph/clg.h"

namespace siwa {
namespace {

using support::Arena;
using support::ArenaAllocator;

TEST(Arena, RespectsAlignment) {
  Arena arena(1024);
  for (std::size_t align : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                            std::size_t{16}, std::size_t{32}, Arena::kMaxAlign}) {
    for (std::size_t bytes : {std::size_t{1}, std::size_t{3}, std::size_t{17},
                              std::size_t{128}}) {
      void* p = arena.allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "bytes=" << bytes << " align=" << align;
      std::memset(p, 0xab, bytes);  // must be writable storage
    }
  }
}

TEST(Arena, AllocArrayIsTypedAndAligned) {
  Arena arena;
  auto* a = arena.alloc_array<std::uint64_t>(100);
  auto* b = arena.alloc_array<std::uint8_t>(7);
  auto* c = arena.alloc_array<std::uint64_t>(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(std::uint64_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(std::uint64_t), 0u);
  for (std::size_t i = 0; i < 100; ++i) a[i] = i;
  for (std::size_t i = 0; i < 7; ++i) b[i] = 0xcd;
  for (std::size_t i = 0; i < 3; ++i) c[i] = ~i;
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(a[i], i);  // no overlap
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(256);  // tiny blocks
  void* big = arena.allocate(10 * 1024, 8);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5a, 10 * 1024);
  // The oversized block coexists with normal bump allocation.
  void* small = arena.allocate(16, 8);
  ASSERT_NE(small, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 10 * 1024u);
}

TEST(Arena, ResetReusesBlocksWithoutNewHeapAcquisitions) {
  Arena arena(4096);
  // Warm up: force a couple of blocks into existence.
  for (int i = 0; i < 8; ++i) (void)arena.allocate(1024, 8);
  arena.reset();
  const std::size_t warm_blocks = arena.block_allocations();
  void* first = arena.allocate(64, 8);
  for (int round = 0; round < 100; ++round) {
    arena.reset();
    void* p = arena.allocate(64, 8);
    EXPECT_EQ(p, first);  // bump position restarts at the same address
    for (int i = 0; i < 7; ++i) (void)arena.allocate(1024, 8);
  }
  // The whole steady-state loop ran out of the warmed-up blocks.
  EXPECT_EQ(arena.block_allocations(), warm_blocks);
  EXPECT_EQ(arena.bytes_used(), 64u + 7u * 1024u);
}

TEST(Arena, ScopeRewindsToMarker) {
  Arena arena(4096);
  void* outer = arena.allocate(32, 8);
  const std::size_t used_before = arena.bytes_used();
  {
    Arena::Scope scope(arena);
    (void)arena.allocate(512, 8);
    (void)arena.allocate(512, 8);
    EXPECT_GT(arena.bytes_used(), used_before);
  }
  EXPECT_EQ(arena.bytes_used(), used_before);
  // The next allocation lands where the scope's first one did.
  void* again = arena.allocate(512, 8);
  {
    Arena::Scope scope(arena);
    EXPECT_NE(arena.allocate(16, 8), nullptr);
  }
  EXPECT_NE(outer, nullptr);
  EXPECT_NE(again, nullptr);
}

TEST(Arena, ConcurrentAllocationsDoNotOverlap) {
  Arena arena(1 << 16);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 500;
  std::vector<std::vector<std::uint32_t*>> slots(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, &slots, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        auto* p = arena.alloc_array<std::uint32_t>(1);
        *p = static_cast<std::uint32_t>(t * kPerThread + i);
        slots[t].push_back(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every slot still holds its writer's value: no two threads were handed
  // overlapping storage.
  for (std::size_t t = 0; t < kThreads; ++t)
    for (std::size_t i = 0; i < kPerThread; ++i)
      EXPECT_EQ(*slots[t][i], t * kPerThread + i);
}

TEST(ArenaAllocator, BacksStandardContainers) {
  Arena arena;
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  v.reserve(64);
  for (int i = 0; i < 64; ++i) v.push_back(i);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(v[i], i);
  EXPECT_GE(arena.bytes_used(), 64 * sizeof(int));
}

// --- end-to-end: arena-backed MarkedSearch scratch across all modes ---

const char* const kPrograms[] = {
    R"(
task a is begin send b.d; accept ack; end a;
task b is begin accept d; send a.ack; end b;
)",
    R"(
task a is begin accept ping; send b.pong; end a;
task b is begin accept pong; send a.ping; end b;
)",
    R"(
task a is begin send b.m1; send b.m2; end a;
task b is begin accept m2; accept m1; end b;
)",
    R"(
task t is
begin
  if c then
    accept m;
  else
    accept m;
  end if;
end t;
task u is begin send t.m; end u;
)",
};

TEST(ArenaCertify, AllModesOverCorpusStayConsistent) {
  using core::Algorithm;
  for (const char* source : kPrograms) {
    const lang::Program program = lang::parse_and_check_or_throw(source);
    const sg::SyncGraph g = sg::build_sync_graph(program);
    const core::AnalysisContext ctx(g);
    for (Algorithm algorithm :
         {Algorithm::RefinedSingle, Algorithm::RefinedHeadPair,
          Algorithm::RefinedHeadTail, Algorithm::RefinedHeadTailPairs}) {
      core::CertifyOptions options;
      options.algorithm = algorithm;
      const core::CertifyResult serial = certify_graph(ctx, options);
      // Re-certify through the same context (cached CLG) and in parallel;
      // verdicts must be identical.
      options.parallel.threads = 4;
      const core::CertifyResult parallel = certify_graph(ctx, options);
      EXPECT_EQ(serial.certified_free, parallel.certified_free);
      EXPECT_EQ(serial.witness_nodes, parallel.witness_nodes);
    }
  }
}

TEST(ArenaCertify, MarkedSearchScratchIsArenaSized) {
  const lang::Program program = lang::parse_and_check_or_throw(kPrograms[1]);
  const sg::SyncGraph g = sg::build_sync_graph(program);
  const sg::Clg clg(g);
  core::MarkedSearch scratch(clg);
  EXPECT_GT(scratch.scratch_bytes(), 0u);
  const std::size_t bytes = scratch.scratch_bytes();
  // Repeated evaluations reuse the same arena footprint.
  const core::AnalysisContext ctx(g);
  const core::Precedence precedence(ctx, {});
  const core::CoExec coexec(ctx);
  const auto hyps = core::enumerate_hypotheses(ctx, precedence, coexec, {});
  for (int round = 0; round < 3; ++round)
    for (const core::Hypothesis& hyp : hyps)
      (void)core::evaluate_hypothesis(g, clg, precedence, coexec, hyp,
                                      scratch);
  EXPECT_EQ(scratch.scratch_bytes(), bytes);
}

}  // namespace
}  // namespace siwa
