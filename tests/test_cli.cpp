// Pins the CLI exit-code contract shared by deadlock_audit, batch_report,
// siwa_lint and siwa_farm (see README "Exit codes"):
//
//   0  clean: nothing flagged
//   1  at least one finding (possible infinite wait / Error diagnostic /
//      flagged file)
//   2  usage error, unreadable input, or internal failure
//
// The binaries are driven for real via std::system; their paths and the
// shipped example corpus arrive as compile definitions from CMake.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

int run(const std::string& command) {
  const int status = std::system((command + " >/dev/null 2>&1").c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

std::string q(const std::string& arg) { return "'" + arg + "'"; }

const std::string kPrograms = SIWA_PROGRAMS_DIR;
const std::string kHandshake = kPrograms + "/handshake.mada";
const std::string kMutualWait = kPrograms + "/mutual_wait.mada";

std::string test_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("siwa_cli_" + name);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string write_file(const std::string& dir, const std::string& name,
                       std::string_view content) {
  const std::string path = (std::filesystem::path(dir) / name).string();
  std::ofstream out(path);
  out << content;
  return path;
}

constexpr const char* kFreeGraph = R"(task left
task right
node 2 left right.msg +
node 3 right right.msg -
entry left 2
entry right 3
cedge b 2
cedge 2 e
cedge b 3
cedge 3 e
)";

constexpr const char* kCycleGraph = R"(task t1
task t2
node 2 t1 t2.m1 +
node 3 t2 t1.m2 +
node 4 t1 t1.m2 -
node 5 t2 t2.m1 -
entry t1 2
entry t2 3
cedge b 2
cedge 2 4
cedge 4 e
cedge b 3
cedge 3 5
cedge 5 e
)";

TEST(CliExitCodes, DeadlockAudit) {
  const std::string bin = SIWA_AUDIT_BIN;
  EXPECT_EQ(run(bin + " " + q(kHandshake)), 0);
  EXPECT_EQ(run(bin + " " + q(kMutualWait)), 1);
  EXPECT_EQ(run(bin), 2) << "no input is a usage error";
  EXPECT_EQ(run(bin + " /nonexistent/missing.mada"), 2);
  EXPECT_EQ(run(bin + " --oracle-max-states -5 " + q(kHandshake)), 2)
      << "a malformed flag value is a usage error";
}

TEST(CliExitCodes, SiwaLint) {
  const std::string bin = SIWA_LINT_BIN;
  EXPECT_EQ(run(bin + " " + q(kHandshake)), 0)
      << "warnings alone do not flag the run";
  const std::string dir = test_dir("lint");
  const std::string broken =
      write_file(dir, "broken.mada", "task broken is begin send ; end\n");
  EXPECT_EQ(run(bin + " " + q(broken)), 1)
      << "a parse failure is an Error finding";
  EXPECT_EQ(run(bin), 2) << "no input is a usage error";
  EXPECT_EQ(run(bin + " --no-such-flag " + q(kHandshake)), 2);
  EXPECT_EQ(run(bin + " /nonexistent/missing.mada"), 2);
}

TEST(CliExitCodes, BatchReport) {
  const std::string bin = SIWA_BATCH_BIN;
  // The shipped corpus contains exactly one triage-flagged program.
  EXPECT_EQ(run(bin + " " + q(kPrograms)), 1);
  const std::string dir = test_dir("batch_clean");
  write_file(dir, "handshake.mada",
             "task a is begin send b.d; accept ack; end a;\n"
             "task b is begin accept d; send a.ack; end b;\n");
  EXPECT_EQ(run(bin + " " + q(dir)), 0) << "a clean corpus exits 0";
  EXPECT_EQ(run(bin), 2) << "no directory is a usage error";
  EXPECT_EQ(run(bin + " /nonexistent/dir"), 2);
}

TEST(CliExitCodes, SiwaFarm) {
  const std::string bin = SIWA_FARM_BIN;
  const std::string dir = test_dir("farm");
  write_file(dir, "free.sg", kFreeGraph);
  write_file(dir, "cycle.sg", kCycleGraph);
  const std::string clean = write_file(dir, "clean.txt", "free.sg\n");
  const std::string mixed =
      write_file(dir, "mixed.txt", "free.sg\ncycle.sg\n");

  EXPECT_EQ(run(bin + " --in-process " + q(clean)), 0);
  EXPECT_EQ(run(bin + " --in-process " + q(mixed)), 1);
  EXPECT_EQ(run(bin + " --workers 2 " + q(mixed)), 1)
      << "subprocess mode shares the contract";
  EXPECT_EQ(run(bin), 2) << "no manifest is a usage error";
  EXPECT_EQ(run(bin + " --workers 2x " + q(clean)), 2);
  EXPECT_EQ(run(bin + " /nonexistent/manifest.txt"), 2);

  // Quarantined (poison) jobs are an internal failure, not a verdict.
  ::setenv("SIWA_FARM_POISON", "cycle", 1);
  EXPECT_EQ(run(bin + " --workers 2 " + q(mixed)), 2);
  ::unsetenv("SIWA_FARM_POISON");
}

}  // namespace
